//! Corpus-keyed result cache under `target/lint-cache/`.
//!
//! A scan is a pure function of the source corpus, so the whole
//! analysis result can be memoized against a single content hash:
//! FNV-1a (64-bit) over every `(rel_path, source)` pair in walk order.
//! A warm run — the common `ci.sh` / editor-save case where nothing
//! changed — reduces to the directory walk plus one hash and a JSON
//! read, skipping the parse, call-graph, and interval passes entirely.
//! Any edit anywhere changes the key, so staleness is structural:
//! there is no invalidation protocol to get wrong, just a new key.
//!
//! Manifests are `corpus-<fnv64>.json`; the directory is pruned to the
//! [`MAX_MANIFESTS`] most recent so branch-hopping cannot grow it
//! without bound. `--no-cache` bypasses both read and write (used by
//! CI to time a guaranteed-cold scan). `--fix` rewrites sources before
//! analyzing and re-keys naturally.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::report::LintReport;
use crate::{
    analyze_sources, collect_sources, Analysis, Related, Violation, RULES, SCHEMA_VERSION,
};

/// Manifests kept after pruning (most-recently written first).
const MAX_MANIFESTS: usize = 8;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a over byte chunks.
fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    let mut h = hash;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content hash of the whole corpus: every path and source, length-
/// delimited so concatenation boundaries cannot collide.
pub(crate) fn corpus_key(sources: &[(String, String)]) -> u64 {
    let mut h = FNV_OFFSET;
    for (rel, src) in sources {
        h = fnv1a(h, &(rel.len() as u64).to_le_bytes());
        h = fnv1a(h, rel.as_bytes());
        h = fnv1a(h, &(src.len() as u64).to_le_bytes());
        h = fnv1a(h, src.as_bytes());
    }
    h
}

/// A [`Violation`] with the rule as an owned string (the live struct
/// interns rules as `&'static str`, which cannot deserialize).
#[derive(Serialize, Deserialize)]
struct CachedViolation {
    file: String,
    line: usize,
    rule: String,
    message: String,
    related: Vec<CachedRelated>,
}

/// Serializable mirror of [`Related`].
#[derive(Serialize, Deserialize)]
struct CachedRelated {
    file: String,
    line: usize,
    message: String,
}

/// Serializable mirror of one `dead_allows` entry.
#[derive(Serialize, Deserialize)]
struct CachedDeadAllow {
    file: String,
    line: usize,
    name: String,
}

/// The on-disk manifest: everything [`Analysis`] carries.
#[derive(Serialize, Deserialize)]
struct Manifest {
    /// Report schema version; a manifest from another analyzer
    /// generation is ignored.
    schema: usize,
    violations: Vec<CachedViolation>,
    dead_allows: Vec<CachedDeadAllow>,
    report: LintReport,
}

fn cache_dir(root: &Path) -> PathBuf {
    root.join("target").join("lint-cache")
}

fn manifest_path(root: &Path, key: u64) -> PathBuf {
    cache_dir(root).join(format!("corpus-{key:016x}.json"))
}

/// Rebuilds an [`Analysis`] from a parsed manifest. `None` when the
/// manifest references a rule this analyzer no longer knows (a stale
/// cache from a different build).
fn rehydrate(m: Manifest) -> Option<Analysis> {
    let mut violations = Vec::with_capacity(m.violations.len());
    for v in m.violations {
        let rule = RULES.iter().find(|r| **r == v.rule).copied()?;
        violations.push(Violation {
            file: v.file,
            line: v.line,
            rule,
            message: v.message,
            related: v
                .related
                .into_iter()
                .map(|r| Related {
                    file: r.file,
                    line: r.line,
                    message: r.message,
                })
                .collect(),
        });
    }
    Some(Analysis {
        violations,
        report: m.report,
        dead_allows: m
            .dead_allows
            .into_iter()
            .map(|d| (d.file, d.line, d.name))
            .collect(),
    })
}

fn dehydrate(analysis: &Analysis) -> Manifest {
    Manifest {
        schema: SCHEMA_VERSION,
        violations: analysis
            .violations
            .iter()
            .map(|v| CachedViolation {
                file: v.file.clone(),
                line: v.line,
                rule: v.rule.to_string(),
                message: v.message.clone(),
                related: v
                    .related
                    .iter()
                    .map(|r| CachedRelated {
                        file: r.file.clone(),
                        line: r.line,
                        message: r.message.clone(),
                    })
                    .collect(),
            })
            .collect(),
        dead_allows: analysis
            .dead_allows
            .iter()
            .map(|(file, line, name)| CachedDeadAllow {
                file: file.clone(),
                line: *line,
                name: name.clone(),
            })
            .collect(),
        report: analysis.report.clone(),
    }
}

/// Deletes the oldest manifests (by modification time, then name) so at
/// most [`MAX_MANIFESTS`] remain. Best-effort: a racing delete is fine.
fn prune(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut manifests: Vec<(std::time::SystemTime, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let path = e.path();
            let name = path.file_name()?.to_string_lossy().into_owned();
            if !(name.starts_with("corpus-") && name.ends_with(".json")) {
                return None;
            }
            let mtime = e.metadata().ok()?.modified().ok()?;
            Some((mtime, path))
        })
        .collect();
    if manifests.len() <= MAX_MANIFESTS {
        return;
    }
    manifests.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    let excess = manifests.len() - MAX_MANIFESTS;
    for (_, path) in manifests.into_iter().take(excess) {
        let _ = fs::remove_file(path);
    }
}

/// [`crate::analyze_root`] behind the corpus cache.
///
/// With `use_cache`, a manifest matching the corpus hash short-circuits
/// the scan; otherwise the full analysis runs and its result is written
/// back (and the directory pruned). Cache I/O failures are never
/// fatal — an unreadable or stale manifest just means a cold scan.
///
/// # Errors
///
/// Returns any underlying I/O error from the source walk itself.
pub fn analyze_root_cached(root: &Path, use_cache: bool) -> io::Result<Analysis> {
    let sources = collect_sources(root)?;
    if !use_cache {
        return Ok(analyze_sources(&sources));
    }
    let key = corpus_key(&sources);
    let path = manifest_path(root, key);
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(manifest) = serde_json::from_str::<Manifest>(&text) {
            if manifest.schema == SCHEMA_VERSION {
                if let Some(analysis) = rehydrate(manifest) {
                    return Ok(analysis);
                }
            }
        }
        // Unreadable or stale: fall through to a cold scan that will
        // overwrite it.
    }
    let analysis = analyze_sources(&sources);
    let dir = cache_dir(root);
    if fs::create_dir_all(&dir).is_ok() {
        if let Ok(json) = serde_json::to_string(&dehydrate(&analysis)) {
            let _ = fs::write(&path, json);
        }
        prune(&dir);
    }
    Ok(analysis)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_order_and_content_sensitive() {
        let a = vec![("a.rs".to_string(), "fn a() {}".to_string())];
        let mut b = a.clone();
        b[0].1.push(' ');
        assert_ne!(corpus_key(&a), corpus_key(&b));
        let two = vec![
            ("a.rs".to_string(), "x".to_string()),
            ("b.rs".to_string(), "y".to_string()),
        ];
        let swapped = vec![two[1].clone(), two[0].clone()];
        assert_ne!(corpus_key(&two), corpus_key(&swapped));
        // Length delimiting: moving a byte across the path/source
        // boundary changes the key.
        let c = vec![("ab.rs".to_string(), "c".to_string())];
        let d = vec![("a".to_string(), "b.rsc".to_string())];
        assert_ne!(corpus_key(&c), corpus_key(&d));
    }

    #[test]
    fn analysis_round_trips_through_manifest() {
        let sources = vec![(
            "crates/core/src/policy.rs".to_string(),
            "fn f() { let v = vec![1]; }\n".to_string(),
        )];
        let analysis = analyze_sources(&sources);
        let json = serde_json::to_string(&dehydrate(&analysis)).unwrap();
        let back = rehydrate(serde_json::from_str(&json).unwrap()).unwrap();
        assert_eq!(back.violations, analysis.violations);
        assert_eq!(back.report, analysis.report);
        assert_eq!(back.dead_allows, analysis.dead_allows);
    }

    #[test]
    fn unknown_rule_invalidates_manifest() {
        let manifest = Manifest {
            schema: SCHEMA_VERSION,
            violations: vec![CachedViolation {
                file: "x.rs".to_string(),
                line: 1,
                rule: "rule_from_the_future".to_string(),
                message: String::new(),
                related: Vec::new(),
            }],
            dead_allows: Vec::new(),
            report: analyze_sources(&[]).report,
        };
        assert!(rehydrate(manifest).is_none());
    }

    #[test]
    fn warm_run_reuses_manifest_and_prunes() {
        let dir = std::env::temp_dir().join(format!(
            "lint-cache-test-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/core/src")).unwrap();
        fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
        let file = dir.join("crates/core/src/policy.rs");
        fs::write(&file, "fn f() { let v = vec![1]; }\n").unwrap();

        let cold = analyze_root_cached(&dir, true).unwrap();
        let manifests = || {
            fs::read_dir(cache_dir(&dir))
                .map(|d| d.flatten().count())
                .unwrap_or(0)
        };
        assert_eq!(manifests(), 1, "cold run writes one manifest");
        let warm = analyze_root_cached(&dir, true).unwrap();
        assert_eq!(warm.violations, cold.violations);
        assert_eq!(warm.report, cold.report);

        // Ten distinct corpora leave at most MAX_MANIFESTS manifests.
        for i in 0..10 {
            fs::write(&file, format!("fn f() {{ let v = vec![{i}]; }}\n")).unwrap();
            analyze_root_cached(&dir, true).unwrap();
        }
        assert!(manifests() <= MAX_MANIFESTS, "{} manifests", manifests());
        let _ = fs::remove_dir_all(&dir);
    }
}
