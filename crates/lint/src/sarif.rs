//! SARIF 2.1.0 export (`--sarif <path>`): the full scan as a static
//! analysis log editors and code-review UIs ingest natively.
//!
//! The emitter is a hand-rolled JSON printer rather than a serde pass:
//! key order, indentation, and escaping are pinned by construction, so
//! the same tree always produces the same bytes — the golden test
//! byte-compares a committed log, and CI can diff two runs with `cmp`.
//! Violations arrive already sorted by (file, line, rule) from
//! [`crate::analyze_sources`]; the rule table follows [`RULES`] order,
//! and every result carries its `ruleIndex` into that table. Witness
//! chains ([`Violation::related`]) become SARIF `relatedLocations`, so
//! an `implicit_panic` finding links back to its enclosing function.

use crate::{Violation, RULES};

/// One-line `shortDescription` per rule, [`RULES`]-aligned (asserted in
/// tests so a new rule cannot ship without SARIF help text).
const RULE_HELP: &[(&str, &str)] = &[
    ("alloc", "Heap-constructor token in a deny_alloc module."),
    (
        "nondet",
        "Nondeterministic construct (hash iteration order, wall clock, entropy) in a decision-path crate.",
    ),
    (
        "panic",
        "Potential panic path (unwrap/expect/panic!/partial_cmp) in library code.",
    ),
    ("missing_docs", "pub fn without a doc comment."),
    ("unsafe_code", "`unsafe` outside the annotated allowlist."),
    (
        "hot_path_marker",
        "Decision-hot-path module missing its `// lint: deny_alloc` marker.",
    ),
    (
        "transitive_alloc",
        "deny_alloc function reaching an allocating function through some call chain.",
    ),
    (
        "transitive_panic",
        "deny_alloc function reaching a potentially panicking function.",
    ),
    (
        "transitive_nondet",
        "deny_alloc function reaching a nondeterministic function.",
    ),
    (
        "dead_allow",
        "allow(...) directive that no longer suppresses anything.",
    ),
    (
        "guard_across_blocking",
        "Lock guard held across a blocking operation.",
    ),
    (
        "lock_order",
        "Lock acquisition order inverts an established edge (potential deadlock).",
    ),
    (
        "unbounded_queue",
        "Channel drained without a batch or length bound.",
    ),
    (
        "call_depth_budget",
        "Transitive call depth exceeding the committed depth_budget(N) ceiling.",
    ),
    (
        "implicit_panic",
        "Implicit panic site (index, slice, div, rem, unsigned sub) the interval engine could not discharge.",
    ),
    (
        "float_determinism",
        "Float reduction over a nondeterministic iteration order without an ordered_merge contract.",
    ),
];

/// Renders the violation set as a complete SARIF 2.1.0 log.
///
/// The output is byte-deterministic: fixed key order, two-space
/// indentation, `\n` separators, and a trailing newline. Paths are
/// emitted workspace-relative under the `SRCROOT` URI base.
pub fn to_sarif(violations: &[Violation]) -> String {
    let mut w = Writer::new();
    w.open("{");
    w.kv_str("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
    w.kv_str("version", "2.1.0");
    w.key("runs");
    w.open("[");
    w.open("{");

    w.key("tool");
    w.open("{");
    w.key("driver");
    w.open("{");
    w.kv_str("name", "megh-lint");
    w.kv_str("semanticVersion", "4.0.0");
    w.key("rules");
    w.open("[");
    for (id, help) in RULE_HELP {
        w.open("{");
        w.kv_str("id", id);
        w.key("shortDescription");
        w.open("{");
        w.kv_str("text", help);
        w.close("}");
        w.key("defaultConfiguration");
        w.open("{");
        w.kv_str("level", "error");
        w.close("}");
        w.close("}");
    }
    w.close("]");
    w.close("}");
    w.close("}");

    w.key("columnKind");
    w.raw_str("utf16CodeUnits");

    w.key("originalUriBaseIds");
    w.open("{");
    w.key("SRCROOT");
    w.open("{");
    w.kv_str("uri", "file:///");
    w.close("}");
    w.close("}");

    w.key("results");
    w.open("[");
    for v in violations {
        let rule_index = RULES.iter().position(|r| *r == v.rule);
        w.open("{");
        w.kv_str("ruleId", v.rule);
        if let Some(idx) = rule_index {
            w.kv_num("ruleIndex", idx as i64);
        }
        w.kv_str("level", "error");
        w.key("message");
        w.open("{");
        w.kv_str("text", &v.message);
        w.close("}");
        w.key("locations");
        w.open("[");
        w.open("{");
        location(&mut w, &v.file, v.line);
        w.close("}");
        w.close("]");
        if !v.related.is_empty() {
            w.key("relatedLocations");
            w.open("[");
            for r in &v.related {
                w.open("{");
                location(&mut w, &r.file, r.line);
                w.key("message");
                w.open("{");
                w.kv_str("text", &r.message);
                w.close("}");
                w.close("}");
            }
            w.close("]");
        }
        w.close("}");
    }
    w.close("]");

    w.close("}");
    w.close("]");
    w.close("}");
    w.finish()
}

/// Emits a `physicalLocation` object for `(file, line)`.
fn location(w: &mut Writer, file: &str, line: usize) {
    w.key("physicalLocation");
    w.open("{");
    w.key("artifactLocation");
    w.open("{");
    w.kv_str("uri", file);
    w.kv_str("uriBaseId", "SRCROOT");
    w.close("}");
    w.key("region");
    w.open("{");
    w.kv_num("startLine", line as i64);
    w.close("}");
    w.close("}");
}

/// Minimal pretty-printing JSON writer with pinned formatting: callers
/// drive structure with `open`/`close`/`key`, the writer tracks commas
/// and indentation. Invalid nesting is a programming error caught by
/// the golden test, not a runtime concern.
struct Writer {
    out: String,
    indent: usize,
    /// Whether the current container already has an element (comma
    /// bookkeeping), one flag per nesting level.
    has_item: Vec<bool>,
    /// A `key` was just written; the next value continues its line.
    pending_key: bool,
}

impl Writer {
    fn new() -> Writer {
        Writer {
            out: String::new(),
            indent: 0,
            has_item: vec![false],
            pending_key: false,
        }
    }

    /// Starts a value: separating comma, newline, and indentation —
    /// unless it directly follows its key on the same line.
    fn begin_value(&mut self) {
        if self.pending_key {
            self.pending_key = false;
            return;
        }
        if let Some(has) = self.has_item.last_mut() {
            if *has {
                self.out.push(',');
            }
            *has = true;
        }
        if self.indent > 0 || !self.out.is_empty() {
            self.out.push('\n');
        }
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn open(&mut self, delim: &str) {
        self.begin_value();
        if let Some(has) = self.has_item.last_mut() {
            *has = true;
        }
        self.out.push_str(delim);
        self.indent += 1;
        self.has_item.push(false);
    }

    fn close(&mut self, delim: &str) {
        let had_items = self.has_item.pop().unwrap_or(false);
        self.indent -= 1;
        if had_items {
            self.out.push('\n');
            for _ in 0..self.indent {
                self.out.push_str("  ");
            }
        }
        self.out.push_str(delim);
    }

    fn key(&mut self, name: &str) {
        self.begin_value();
        self.out.push('"');
        escape_into(&mut self.out, name);
        self.out.push_str("\": ");
        self.pending_key = true;
    }

    fn raw_str(&mut self, value: &str) {
        self.begin_value();
        self.out.push('"');
        escape_into(&mut self.out, value);
        self.out.push('"');
    }

    fn kv_str(&mut self, name: &str, value: &str) {
        self.key(name);
        self.raw_str(value);
    }

    fn kv_num(&mut self, name: &str, value: i64) {
        self.key(name);
        self.begin_value();
        self.out.push_str(&value.to_string());
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

/// JSON string escaping (RFC 8259): quotes, backslashes, and control
/// characters; everything else passes through as UTF-8.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Related;

    #[test]
    fn rule_help_is_rules_aligned() {
        assert_eq!(RULE_HELP.len(), RULES.len());
        for ((id, _), rule) in RULE_HELP.iter().zip(RULES.iter()) {
            assert_eq!(id, rule, "RULE_HELP order diverged from RULES");
        }
    }

    #[test]
    fn empty_scan_is_valid_sarif() {
        let log = to_sarif(&[]);
        let parsed: serde_json::Value = serde_json::from_str(&log).expect("valid JSON");
        assert_eq!(parsed["version"].as_str(), Some("2.1.0"));
        assert_eq!(
            parsed["runs"][0]["tool"]["driver"]["rules"]
                .as_array()
                .map(Vec::len),
            Some(RULES.len())
        );
        assert_eq!(
            parsed["runs"][0]["results"].as_array().map(Vec::len),
            Some(0)
        );
    }

    #[test]
    fn results_carry_locations_and_witness_chain() {
        let v = Violation {
            file: "crates/core/src/agent.rs".to_string(),
            line: 42,
            rule: "implicit_panic",
            message: "site \"xs[i]\" not discharged".to_string(),
            related: vec![Related {
                file: "crates/core/src/agent.rs".to_string(),
                line: 40,
                message: "in fn decide".to_string(),
            }],
        };
        let log = to_sarif(&[v]);
        let parsed: serde_json::Value = serde_json::from_str(&log).expect("valid JSON");
        let result = &parsed["runs"][0]["results"][0];
        assert_eq!(result["ruleId"].as_str(), Some("implicit_panic"));
        assert_eq!(
            result["ruleIndex"].as_u64(),
            Some(RULES.iter().position(|r| *r == "implicit_panic").unwrap() as u64)
        );
        assert_eq!(
            result["locations"][0]["physicalLocation"]["region"]["startLine"].as_u64(),
            Some(42)
        );
        assert_eq!(
            result["relatedLocations"][0]["physicalLocation"]["region"]["startLine"].as_u64(),
            Some(40)
        );
    }

    #[test]
    fn emission_is_byte_deterministic() {
        let vs: Vec<Violation> = (0..3)
            .map(|i| Violation {
                file: format!("crates/sim/src/f{i}.rs"),
                line: i + 1,
                rule: "panic",
                message: format!("msg {i} with \"quotes\" and \\ slashes"),
                related: Vec::new(),
            })
            .collect();
        assert_eq!(to_sarif(&vs), to_sarif(&vs));
    }
}
