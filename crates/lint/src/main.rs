//! Binary driver: `cargo run -p lint [--root <dir>]`.
//!
//! Walks the workspace, prints every invariant violation as
//! `path:line: [rule] message`, and exits non-zero when any are found.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--help" | "-h" => {
                println!("usage: lint [--root <workspace-dir>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    // `cargo run -p lint` runs from the workspace root; fall back to the
    // manifest's grandparent so the binary also works when invoked directly.
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("Cargo.toml").exists() && cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .unwrap_or(cwd)
        }
    });

    match lint::scan_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("lint: workspace clean ({} rules enforced)", 6);
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                eprintln!("{v}");
            }
            eprintln!("lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("lint: io error: {err}");
            ExitCode::FAILURE
        }
    }
}
