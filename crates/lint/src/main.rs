//! Binary driver:
//! `cargo run -p lint [--root <dir>] [--report] [--diff] [--fix [--check]]
//! [--sarif <path>] [--no-cache]`.
//!
//! Walks the workspace, prints every invariant violation as
//! `path:line: [rule] message`, and exits non-zero when any are found.
//!
//! * `--report` — (re)write the committed `LINT_REPORT.json` artifact at
//!   the workspace root from the current scan.
//! * `--diff` — compare the current scan against the committed
//!   `LINT_REPORT.json` snapshot; exit non-zero on fatal regressions
//!   (a previously-clean function gaining a property, or any rule's
//!   violation count increasing).
//! * `--fix` — delete dead `lint: allow(...)` names and normalize
//!   directive grammar in place, then analyze the fixed tree. The
//!   rewrite is idempotent: a second `--fix` run changes nothing.
//! * `--check` (with `--fix`) — report the files `--fix` would rewrite
//!   without touching them, and exit non-zero if there are any.
//! * `--sarif <path>` — additionally write the scan as a SARIF 2.1.0
//!   log (byte-deterministic; see `sarif.rs`).
//! * `--no-cache` — bypass the `target/lint-cache/` corpus cache and
//!   force a cold scan (CI uses this to time the analysis itself).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut write_report = false;
    let mut diff_mode = false;
    let mut fix_mode = false;
    let mut check_mode = false;
    let mut sarif_path: Option<PathBuf> = None;
    let mut use_cache = true;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--report" => write_report = true,
            "--diff" => diff_mode = true,
            "--fix" => fix_mode = true,
            "--check" => check_mode = true,
            "--sarif" => {
                sarif_path = args.next().map(PathBuf::from);
                if sarif_path.is_none() {
                    eprintln!("lint: --sarif needs an output path");
                    return ExitCode::FAILURE;
                }
            }
            "--no-cache" => use_cache = false,
            "--help" | "-h" => {
                println!(
                    "usage: lint [--root <workspace-dir>] [--report] [--diff] \
                     [--fix [--check]] [--sarif <path>] [--no-cache]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("lint: unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    // `cargo run -p lint` runs from the workspace root; fall back to the
    // manifest's grandparent so the binary also works when invoked directly.
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        if cwd.join("Cargo.toml").exists() && cwd.join("crates").is_dir() {
            cwd
        } else {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .unwrap_or(cwd)
        }
    });

    if check_mode && !fix_mode {
        eprintln!("lint: --check requires --fix");
        return ExitCode::FAILURE;
    }
    if fix_mode {
        match lint::fix_root(&root, check_mode) {
            Ok(changed) if changed.is_empty() => {
                println!("lint: fix: nothing to do");
            }
            Ok(changed) => {
                for rel in &changed {
                    println!(
                        "lint: fix: {} {rel}",
                        if check_mode {
                            "would rewrite"
                        } else {
                            "rewrote"
                        }
                    );
                }
                if check_mode {
                    eprintln!(
                        "lint: fix: {} file(s) need `cargo run -p lint -- --fix`",
                        changed.len()
                    );
                    return ExitCode::FAILURE;
                }
            }
            Err(err) => {
                eprintln!("lint: fix: io error: {err}");
                return ExitCode::FAILURE;
            }
        }
    }

    let analysis = match lint::analyze_root_cached(&root, use_cache) {
        Ok(analysis) => analysis,
        Err(err) => {
            eprintln!("lint: io error: {err}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;

    if let Some(path) = &sarif_path {
        if let Err(err) = std::fs::write(path, lint::to_sarif(&analysis.violations)) {
            eprintln!("lint: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("lint: wrote {}", path.display());
    }

    if write_report {
        let json = match serde_json::to_string_pretty(&analysis.report) {
            Ok(json) => json,
            Err(err) => {
                eprintln!("lint: report serialization failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        let path = root.join(lint::REPORT_FILE);
        if let Err(err) = std::fs::write(&path, json + "\n") {
            eprintln!("lint: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("lint: wrote {}", path.display());
    }

    if diff_mode {
        let path = root.join(lint::REPORT_FILE);
        let prev = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!(
                    "lint: cannot read committed snapshot {}: {err}\n\
                     lint: run `cargo run -p lint -- --report` and commit the result",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        };
        let prev: lint::LintReport = match serde_json::from_str(&prev) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("lint: committed snapshot is not valid: {err}");
                return ExitCode::FAILURE;
            }
        };
        let diff = lint::diff_reports(&prev, &analysis.report);
        print!("{}", lint::render_diff(&diff));
        if !diff.fatal.is_empty() {
            failed = true;
        }
    }

    if analysis.violations.is_empty() {
        if !diff_mode {
            println!(
                "lint: workspace clean ({} rules enforced)",
                lint::RULES.len()
            );
        }
    } else {
        for v in &analysis.violations {
            eprintln!("{v}");
        }
        eprintln!("lint: {} violation(s)", analysis.violations.len());
        failed = true;
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
