//! `--fix`: mechanical rewriting of `lint: allow(...)` directives.
//!
//! Two transformations, both derived from the same analysis that powers
//! the `dead_allow` rule:
//!
//! 1. **Dead-name deletion** — an allow name nothing credited is
//!    removed from its directive; a directive whose every name is dead
//!    is deleted outright, together with a trailing reason clause
//!    (`— construction`, `- cold path`, `: see #12`) and, when that
//!    empties the comment, the comment marker or the whole line.
//! 2. **Grammar normalization** — surviving directives are rewritten to
//!    the canonical spelling `lint: allow(a, b)` (single space after the
//!    colon, `, `-separated names, no interior padding); `ordered_merge`
//!    directives are normalized to `lint: ordered_merge` the same way.
//!
//! The rewrite is a pure function of the source set ([`fix_sources`]),
//! so tests can prove idempotence: running it on its own output changes
//! nothing, because deleting a dead name never creates a new dead name
//! and the canonical spelling maps to itself. Directives inside
//! `#[cfg(test)]` modules, doc comments, and block comments are left
//! untouched — the analyzer ignores the first two, and span surgery
//! inside block comments is not worth the edge cases.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use crate::{analyze_sources, collect_sources, compute_in_test, lex};

/// Rewrites every fixable directive in `sources`; returns only the
/// files whose content changed, as `(rel_path, new_content)`.
pub fn fix_sources(sources: &[(String, String)]) -> Vec<(String, String)> {
    let analysis = analyze_sources(sources);
    let mut dead: BTreeMap<&str, BTreeSet<(usize, String)>> = BTreeMap::new();
    for (file, idx, name) in &analysis.dead_allows {
        dead.entry(file).or_default().insert((*idx, name.clone()));
    }
    let empty = BTreeSet::new();
    let mut changed = Vec::new();
    for (rel, src) in sources {
        let file_dead = dead.get(rel.as_str()).unwrap_or(&empty);
        if let Some(fixed) = fix_file(src, file_dead) {
            changed.push((rel.clone(), fixed));
        }
    }
    changed
}

/// Fixes every eligible `.rs` file under `root` in place; returns the
/// relative paths that would change (and, unless `check`, were
/// rewritten on disk).
///
/// With `check`, the filesystem is left untouched — callers use a
/// non-empty return to fail CI when a `--fix` run is pending.
///
/// # Errors
///
/// Returns any underlying I/O error from the walk or the rewrites.
pub fn fix_root(root: &Path, check: bool) -> io::Result<Vec<String>> {
    let sources = collect_sources(root)?;
    let changed = fix_sources(&sources);
    let mut paths = Vec::new();
    for (rel, content) in changed {
        if !check {
            fs::write(root.join(&rel), content)?;
        }
        paths.push(rel);
    }
    Ok(paths)
}

/// Applies both transformations to one file; `None` when nothing moved.
fn fix_file(src: &str, dead: &BTreeSet<(usize, String)>) -> Option<String> {
    let lexed = lex(src);
    let in_test = compute_in_test(&lexed);
    let mut out: Vec<String> = Vec::new();
    let mut any = false;
    let mut in_block = false;
    for (idx, raw) in src.lines().enumerate() {
        let skip = in_block
            || in_test.get(idx).copied().unwrap_or(false)
            || lexed.get(idx).is_some_and(|l| l.is_doc);
        // Coarse block-comment tracking: enough to refuse surgery on
        // `/* ... */` spans (the analyzer reads them, `--fix` does not).
        if raw.contains("/*") && !raw.contains("*/") {
            in_block = true;
        } else if in_block && raw.contains("*/") {
            in_block = false;
        }
        if skip {
            out.push(raw.to_string());
            continue;
        }
        match fix_line(raw, idx, dead) {
            LineFix::Unchanged => out.push(raw.to_string()),
            LineFix::Replaced(new) => {
                any = true;
                out.push(new);
            }
            LineFix::Deleted => any = true,
        }
    }
    if !any {
        return None;
    }
    let mut text = out.join("\n");
    if src.ends_with('\n') {
        text.push('\n');
    }
    Some(text)
}

/// Outcome of fixing a single line.
enum LineFix {
    Unchanged,
    Replaced(String),
    Deleted,
}

/// Rewrites every `lint: allow(...)` span in the line comment of `raw`.
fn fix_line(raw: &str, idx: usize, dead: &BTreeSet<(usize, String)>) -> LineFix {
    let Some(cstart) = comment_start(raw) else {
        return LineFix::Unchanged;
    };
    let mut line = raw.to_string();
    let mut changed = false;
    // Collect spans first, then edit right-to-left so earlier offsets
    // stay valid after surgery.
    let spans = allow_spans(&line[cstart..]);
    for (span_start, span_end, names) in spans.into_iter().rev() {
        let (abs_start, abs_end) = (cstart + span_start, cstart + span_end);
        let keep: Vec<&str> = names
            .iter()
            .map(String::as_str)
            .filter(|n| !dead.contains(&(idx, n.to_string())))
            .collect();
        if keep.is_empty() {
            // Drop the directive, any trailing reason clause, and the
            // whitespace that led into it.
            let tail = line[abs_end..].trim_start();
            let end = if tail.starts_with('—')
                || tail.starts_with('–')
                || tail.starts_with('-')
                || tail.starts_with(':')
            {
                line.len()
            } else {
                abs_end
            };
            let start = line[..abs_start].trim_end().len();
            line.replace_range(start..end, "");
            changed = true;
        } else {
            let canonical = format!("lint: allow({})", keep.join(", "));
            if line[abs_start..abs_end] != canonical {
                line.replace_range(abs_start..abs_end, &canonical);
                changed = true;
            }
        }
    }
    // Non-allow directive grammar: `ordered_merge` has the same
    // canonical spelling contract (`lint: ordered_merge`, one space
    // after the colon) so rustfmt-style comment churn cannot fork the
    // grammar. Re-find the comment on the possibly-edited line; allow
    // surgery never moves the comment marker.
    if let Some(cstart) = comment_start(&line) {
        let mut from = cstart;
        while let Some(pos) = line[from..].find("lint:") {
            let at = from + pos;
            let body = line[at + 5..].trim_start();
            if body.starts_with("ordered_merge") {
                let body_off = line[at + 5..].len() - body.len();
                let end = at + 5 + body_off + "ordered_merge".len();
                const CANONICAL: &str = "lint: ordered_merge";
                if &line[at..end] != CANONICAL {
                    line.replace_range(at..end, CANONICAL);
                    changed = true;
                    from = at + CANONICAL.len();
                } else {
                    from = end;
                }
            } else {
                from = at + 5;
            }
        }
    }
    if !changed {
        return LineFix::Unchanged;
    }
    // If the surgery emptied the comment, drop the marker; if that
    // empties the line, drop the line.
    let comment_text = line.get(cstart..).unwrap_or("");
    if comment_text.trim_start_matches('/').trim().is_empty() {
        line.truncate(cstart);
        let trimmed = line.trim_end();
        if trimmed.trim_start().is_empty() {
            return LineFix::Deleted;
        }
        line = trimmed.to_string();
    }
    LineFix::Replaced(line)
}

/// Start of the `//` line comment in `raw`, outside string literals.
fn comment_start(raw: &str) -> Option<usize> {
    let bytes = raw.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped byte
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Every `lint: allow(...)` span in `comment`, left to right: byte
/// range (relative to `comment`) from the `l` of `lint:` through the
/// closing `)`, plus the parsed names.
fn allow_spans(comment: &str) -> Vec<(usize, usize, Vec<String>)> {
    let mut spans = Vec::new();
    let mut from = 0;
    while let Some(pos) = comment[from..].find("lint:") {
        let at = from + pos;
        let body = comment[at + 5..].trim_start();
        if let Some(args) = body.strip_prefix("allow(") {
            if let Some(close) = args.find(')') {
                let names: Vec<String> = args[..close]
                    .split(',')
                    .map(str::trim)
                    .filter(|n| !n.is_empty())
                    .map(str::to_string)
                    .collect();
                // Absolute end: position of `)` inside `comment` + 1.
                let body_off = comment[at + 5..].len() - body.len();
                let end = at + 5 + body_off + "allow(".len() + close + 1;
                spans.push((at, end, names));
                from = end;
                continue;
            }
        }
        from = at + 5;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fix_one(src: &str, dead: &[(usize, &str)]) -> Option<String> {
        let dead: BTreeSet<(usize, String)> =
            dead.iter().map(|(i, n)| (*i, n.to_string())).collect();
        fix_file(src, &dead)
    }

    #[test]
    fn dead_name_is_removed_from_multi_name_directive() {
        let src = "fn f() {} // lint: allow(alloc, panic)\n";
        let fixed = fix_one(src, &[(0, "panic")]).unwrap();
        assert_eq!(fixed, "fn f() {} // lint: allow(alloc)\n");
    }

    #[test]
    fn fully_dead_inline_directive_leaves_code_line() {
        let src = "let x = Vec::new(); // lint: allow(alloc)\n";
        let fixed = fix_one(src, &[(0, "alloc")]).unwrap();
        assert_eq!(fixed, "let x = Vec::new();\n");
    }

    #[test]
    fn fully_dead_directive_line_is_deleted_with_reason() {
        let src = "fn a() {}\n// lint: allow(panic) — cold path\nfn b() {}\n";
        let fixed = fix_one(src, &[(1, "panic")]).unwrap();
        assert_eq!(fixed, "fn a() {}\nfn b() {}\n");
    }

    #[test]
    fn leading_prose_survives_directive_deletion() {
        let src = "x(); // programming error, asserted by tests. lint: allow(panic)\n";
        let fixed = fix_one(src, &[(0, "panic")]).unwrap();
        assert_eq!(fixed, "x(); // programming error, asserted by tests.\n");
    }

    #[test]
    fn grammar_is_normalized() {
        let src = "f(); // lint:allow( alloc ,panic )\n";
        let fixed = fix_one(src, &[]).unwrap();
        assert_eq!(fixed, "f(); // lint: allow(alloc, panic)\n");
    }

    #[test]
    fn ordered_merge_grammar_is_normalized() {
        let src = "for v in xs { // lint:ordered_merge\n    s += v;\n}\n";
        let fixed = fix_one(src, &[]).unwrap();
        assert_eq!(
            fixed,
            "for v in xs { // lint: ordered_merge\n    s += v;\n}\n"
        );
        assert!(fix_one(&fixed, &[]).is_none(), "second run must be a no-op");
        // Extra interior padding collapses to the canonical single space.
        let src = "// lint:   ordered_merge\nfor v in xs {}\n";
        let fixed = fix_one(src, &[]).unwrap();
        assert_eq!(fixed, "// lint: ordered_merge\nfor v in xs {}\n");
        // The canonical spelling is untouched.
        assert!(fix_one("// lint: ordered_merge\nf();\n", &[]).is_none());
    }

    #[test]
    fn canonical_directives_are_untouched() {
        let src = "f(); // lint: allow(alloc)\ng(); // lint: deny_alloc\n";
        assert!(fix_one(src, &[]).is_none());
    }

    #[test]
    fn doc_comments_and_tests_are_skipped() {
        let src = "\
/// lint:allow( alloc )
fn f() {}
#[cfg(test)]
mod tests {
    fn t() {} // lint:allow( panic )
}
";
        assert!(fix_one(src, &[]).is_none());
    }

    #[test]
    fn fix_is_idempotent_on_its_own_output() {
        let src = "a(); // lint:allow( alloc ,panic )\n// lint: allow(nondet) - stale\nb();\n";
        let dead = [(1usize, "nondet")];
        let once = fix_one(src, &dead).unwrap();
        // The dead set for the fixed text is empty (the directive is
        // gone); idempotence is "no further change".
        assert!(fix_one(&once, &[]).is_none(), "{once:?}");
    }
}
