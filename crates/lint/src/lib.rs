//! `lint` — a workspace-specific invariant checker for the Megh reproduction.
//!
//! The Megh decision loop earns its headline properties (allocation-free,
//! deterministic, panic-free, sub-microsecond) by convention; this crate makes
//! the conventions machine-enforced. The checker has two layers:
//!
//! 1. **Token rules** (v1): a hand-rolled line lexer strips string literals
//!    and comments, then a rule table matches forbidden tokens per scope.
//! 2. **Call-graph rules** (v2): a recursive-descent item parser over the
//!    same lexer extracts `fn` items, `impl` blocks, struct fields, and
//!    intra-workspace call edges; a fixed-point pass then propagates three
//!    transitive properties — *may-allocate*, *may-panic*, *nondeterminism
//!    taint* — so a `deny_alloc` function calling an allocating helper in an
//!    *unmarked* file is caught across the crate boundary. Receiver
//!    resolution is typed-lite (parameter types, struct field tables, local
//!    inference) and over-approximates by name when the type is unknown.
//!
//! The analyzer also emits the committed `LINT_REPORT.json` artifact
//! (per-rule counts, per-function property table, allow inventory) and a
//! `lint-diff` mode against it — see [`report`] and the `lint` binary.
//!
//! # Annotation grammar
//!
//! Rules are steered by `// lint:` comment directives:
//!
//! * `// lint: deny_alloc` — file-level marker: this module participates in
//!   the no-alloc rule (heap-constructor tokens become violations) and its
//!   functions join the transitive property table.
//! * `// lint: allow(<name>, ...)` — escape hatch. Placed on the offending
//!   line, or alone on the line directly above it. Token-rule names:
//!   `alloc`, `nondet`, `panic`, `missing_docs`, `unsafe_code`. Graph-rule
//!   names (placed on the `fn` signature line, or alone directly above it):
//!   `transitive_alloc`, `transitive_panic`, `transitive_nondet` — these
//!   vouch for the function's whole call subtree and stop propagation
//!   through it.
//!
//! Every allow directive is tracked: one that no longer suppresses a
//! violation or a propagated fact is itself reported (`dead_allow`), so
//! escape hatches cannot quietly outlive the code they excused.
//!
//! # Rule classes
//!
//! | rule                 | scope                                    | forbids |
//! |----------------------|------------------------------------------|---------|
//! | `alloc`              | files marked `deny_alloc`                | heap-constructor tokens (`Vec::new`, `vec!`, `Box::new`, `format!`, `collect`, `clone`, ...) |
//! | `nondet`             | `crates/{core,sim,baselines}/src`        | `HashMap`/`HashSet` (iteration order is seeded per-process), `Instant::now`, `SystemTime::now`, thread-local RNG, free `thread::spawn` (scoped spawns with seed-ordered merges, as in `sim::sweep`, are the sanctioned pattern) |
//! | `panic`              | `crates/{core,sim,linalg,baselines}/src` | `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` and non-total `partial_cmp` comparisons; in `crates/bench/src` only the `partial_cmp` token fires (fail-fast `expect` is idiomatic in experiment binaries, NaN-panicking sort comparators are not) |
//! | `missing_docs`       | `crates/{core,linalg}/src`               | `pub fn` without a preceding doc comment |
//! | `unsafe_code`        | every scanned file                       | the `unsafe` keyword outside the annotated allowlist |
//! | `hot_path_marker`    | the [`HOT_PATH_FILES`] list              | *absence* of the `// lint: deny_alloc` marker — a decision-hot-path module cannot silently opt out of the alloc rule by dropping its marker |
//! | `transitive_alloc`   | functions in `deny_alloc` files          | reaching an (unallowed) allocating function through any call chain |
//! | `transitive_panic`   | `deny_alloc` files in the `panic` scope  | reaching a potentially panicking function |
//! | `transitive_nondet`  | `deny_alloc` files in the `nondet` scope | reaching a nondeterministic function |
//! | `dead_allow`         | every scanned file                       | an `allow(...)` directive that suppresses nothing |
//!
//! Test code is exempt from all of it: `#[cfg(test)]` modules are skipped by
//! brace tracking (their functions also stay out of the call graph), and
//! `tests/` / `benches/` / `src/bin` directories are outside the library
//! scopes. The call graph is additionally *cfg-aware*: a function carrying
//! its own `#[cfg(...)]` attribute (feature-gated verification helpers,
//! platform-specific code) is not part of the always-on build, so it is
//! excluded from the graph — conditionally compiled cold paths need no
//! manual `allow(transitive_*)` vouches.
//!
//! An *allowed* token suppresses the propagated fact too: the annotation
//! means a human vetted that line, so the vetted construct does not taint
//! callers. The transitive rules therefore catch exactly the silent case —
//! forbidden constructs in files where no rule (and no reviewer) was
//! watching.
//!
//! Known limitation: indexing (`a[i]`) is not lexically distinguishable from
//! type syntax and is left to `debug_assert!` discipline and the
//! `check-invariants` feature rather than this pass (see DESIGN §10, §12).

// No unsafe code anywhere in this crate (also enforced by `cargo run -p lint`).
#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

mod cache;
mod dataflow;
mod fix;
mod graph;
mod intervals;
mod items;
pub mod report;
mod sarif;

pub use cache::analyze_root_cached;
pub use fix::{fix_root, fix_sources};
pub use sarif::to_sarif;

pub use report::{
    diff_reports, render_diff, AllowEntry, DepthBudgetEntry, FnEntry, GuardEntry,
    ImplicitPanicSection, LintReport, LockOrderEdge, LockOrderSection, ReportDiff, ReportStats,
    RuleCount, REPORT_FILE, SCHEMA_VERSION,
};

/// Every rule class, in the fixed order the report counts them.
pub const RULES: &[&str] = &[
    "alloc",
    "nondet",
    "panic",
    "missing_docs",
    "unsafe_code",
    "hot_path_marker",
    "transitive_alloc",
    "transitive_panic",
    "transitive_nondet",
    "dead_allow",
    "guard_across_blocking",
    "lock_order",
    "unbounded_queue",
    "call_depth_budget",
    "implicit_panic",
    "float_determinism",
];

/// Rule (and allow) names of the transitive variants, class-aligned
/// with the analyzer's property arrays (0 = alloc, 1 = panic,
/// 2 = nondet).
pub(crate) const TRANSITIVE_RULES: [&str; 3] =
    ["transitive_alloc", "transitive_panic", "transitive_nondet"];

/// Verb phrases for transitive-violation messages, class-aligned.
pub(crate) const CLASS_WORDS: [&str; 3] = [
    "may transitively allocate",
    "may transitively panic",
    "is transitively nondeterministic",
];

/// One rule breach at a specific file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule class name (also the `allow(...)` escape-hatch name).
    pub rule: &'static str,
    /// Human-readable explanation, including the matched token.
    pub message: String,
    /// Witness chain: auxiliary locations that explain the finding
    /// (enclosing function, nondet loop header). Rendered as SARIF
    /// `relatedLocations`.
    pub related: Vec<Related>,
}

/// One auxiliary location in a violation's witness chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Related {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What this location contributes to the finding.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A source line after lexing: executable code with literals blanked, plus
/// the comment text (where `lint:` directives live).
#[derive(Debug, Default, Clone)]
pub(crate) struct LexedLine {
    /// Code with string/char-literal contents replaced by spaces and all
    /// comments removed.
    pub(crate) code: String,
    /// Concatenated comment text for this line (no `//` / `/*` markers).
    pub(crate) comment: String,
    /// True when the line's comment is a doc comment (`///`, `//!`, `/**`).
    pub(crate) is_doc: bool,
}

impl LexedLine {
    fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Normal,
    LineComment { doc: bool },
    BlockComment { doc: bool, depth: usize },
    Str,
    RawStr { hashes: usize },
    Char,
}

/// Split `source` into [`LexedLine`]s, blanking string/char literals and
/// routing comments into the `comment` field.
pub(crate) fn lex(source: &str) -> Vec<LexedLine> {
    let mut lines: Vec<LexedLine> = Vec::new();
    let mut cur = LexedLine::default();
    let mut mode = Mode::Normal;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            // Line comments end at the newline; other modes carry over.
            if matches!(mode, Mode::LineComment { .. }) {
                mode = Mode::Normal;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match mode {
            Mode::Normal => {
                let next = chars.get(i + 1).copied();
                let next2 = chars.get(i + 2).copied();
                if c == '/' && next == Some('/') {
                    let doc = matches!(next2, Some('/') | Some('!'))
                        // `////` dividers are plain comments, not docs.
                        && !(next2 == Some('/') && chars.get(i + 3) == Some(&'/'));
                    if doc {
                        cur.is_doc = true;
                    }
                    mode = Mode::LineComment { doc };
                    i += 2;
                    if doc {
                        i += 1;
                    }
                } else if c == '/' && next == Some('*') {
                    let doc =
                        matches!(next2, Some('*') | Some('!')) && chars.get(i + 3) != Some(&'/');
                    if doc {
                        cur.is_doc = true;
                    }
                    mode = Mode::BlockComment { doc, depth: 1 };
                    i += 2;
                } else if c == 'r' && (next == Some('"') || next == Some('#')) {
                    // Possible raw string r"..." / r#"..."#; only if `r` is
                    // not part of an identifier (e.g. `var#` is not Rust).
                    let prev_ident =
                        i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if !prev_ident && chars.get(j) == Some(&'"') {
                        cur.code.push('"');
                        mode = Mode::RawStr { hashes };
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if c == '\'' {
                    // Distinguish a char literal from a lifetime: a literal
                    // closes with `'` after one (possibly escaped) char.
                    let is_char_lit = match next {
                        Some('\\') => true,
                        Some(_) => next2 == Some('\''),
                        None => false,
                    };
                    if is_char_lit {
                        cur.code.push('\'');
                        mode = Mode::Char;
                        i += 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment { .. } => {
                cur.comment.push(c);
                i += 1;
            }
            Mode::BlockComment { doc, depth } => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment {
                        doc,
                        depth: depth + 1,
                    };
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    if depth == 1 {
                        mode = Mode::Normal;
                    } else {
                        mode = Mode::BlockComment {
                            doc,
                            depth: depth - 1,
                        };
                    }
                    i += 2;
                } else {
                    if doc {
                        cur.is_doc = true;
                    }
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // Never jump over a newline: the top of the loop counts it.
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '"' {
                    cur.code.push('"');
                    mode = Mode::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr { hashes } => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0usize;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        cur.code.push('"');
                        mode = Mode::Normal;
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            Mode::Char => {
                if c == '\\' {
                    i += if chars.get(i + 1) == Some(&'\n') {
                        1
                    } else {
                        2
                    };
                } else if c == '\'' {
                    cur.code.push('\'');
                    mode = Mode::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    lines.push(cur);
    lines
}

/// Number of physical lines the lexer produces for `source` — exposed
/// for property tests (the lexer itself is crate-private).
pub fn lexed_line_count(source: &str) -> usize {
    lex(source).len()
}

/// Directives parsed from one line's comments.
#[derive(Debug, Default, Clone)]
pub(crate) struct Directives {
    deny_alloc: bool,
    allows: Vec<String>,
    /// `depth_budget(N)`: ceiling on the transitive call depth of the
    /// function whose signature shares this line.
    depth_budget: Option<u64>,
    /// `ordered_merge`: the float reduction on (or under the loop
    /// header on) this line merges in ascending index order.
    ordered_merge: bool,
}

fn parse_directives(comment: &str) -> Directives {
    let mut out = Directives::default();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:") {
        let body = rest[pos + 5..].trim_start();
        if body.starts_with("deny_alloc") {
            out.deny_alloc = true;
        } else if let Some(args) = body.strip_prefix("allow(") {
            if let Some(end) = args.find(')') {
                for name in args[..end].split(',') {
                    let name = name.trim();
                    if !name.is_empty() {
                        out.allows.push(name.to_string());
                    }
                }
            }
        } else if let Some(args) = body.strip_prefix("depth_budget(") {
            if let Some(end) = args.find(')') {
                out.depth_budget = args[..end].trim().parse().ok();
            }
        } else if body.starts_with("ordered_merge") {
            out.ordered_merge = true;
        }
        rest = &rest[pos + 5..];
    }
    out
}

/// Whether `code` contains `token` at a position where it is not part of a
/// longer identifier (so `expect(` does not match `expect_err(`, and
/// `unsafe` does not match `unsafe_code` inside an attribute).
fn has_token(code: &str, token: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        // Method-call tokens start with `.`: the receiver before them is
        // legitimately an identifier, so only non-dotted tokens need a
        // left boundary.
        let before_ok = token.starts_with('.') || at == 0 || {
            let b = bytes[at - 1] as char;
            !(b.is_alphanumeric() || b == '_')
        };
        let end = at + token.len();
        let after_ok = end >= bytes.len() || {
            let a = bytes[end] as char;
            // Tokens ending in `(`, `!` or `<` are already delimited.
            let last = token.as_bytes()[token.len() - 1] as char;
            if last == '(' || last == '!' || last == '<' {
                true
            } else {
                !(a.is_alphanumeric() || a == '_')
            }
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Rule scopes derived from the workspace-relative path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// `panic` rule applies (library source of core/sim/linalg/baselines).
    pub no_panic: bool,
    /// The NaN-comparison subset of the `panic` rule applies: only the
    /// `.partial_cmp(` token fires. Covers `crates/bench` (including its
    /// binaries), where fail-fast `unwrap`/`expect` is idiomatic but a
    /// `partial_cmp(..).unwrap()` sort comparator is the exact NaN panic
    /// class the full-scope crates purged.
    pub nan_cmp: bool,
    /// `nondet` rule applies (decision-path crates core/sim/baselines).
    pub deterministic: bool,
    /// `missing_docs` rule applies (public API of core/linalg).
    pub docs: bool,
    /// `unsafe_code` rule applies (all scanned files).
    pub no_unsafe: bool,
}

/// Compute which rule classes apply to a workspace-relative path.
pub fn scope_for(rel_path: &str) -> Scope {
    let rel = rel_path.replace('\\', "/");
    let in_src = |krate: &str| rel.starts_with(&format!("crates/{krate}/src/"));
    Scope {
        no_panic: ["core", "sim", "linalg", "baselines"]
            .iter()
            .any(|c| in_src(c)),
        nan_cmp: in_src("bench"),
        deterministic: ["core", "sim", "baselines"].iter().any(|c| in_src(c)),
        docs: ["core", "linalg"].iter().any(|c| in_src(c)),
        no_unsafe: true,
    }
}

const ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "vec!",
    "Box::new",
    "format!",
    "String::new",
    "String::from",
    ".to_vec(",
    ".to_string(",
    ".to_owned(",
    ".collect(",
    ".collect::<",
    ".clone(",
];

const NONDET_TOKENS: &[&str] = &[
    "HashMap",
    "HashSet",
    "RandomState",
    "Instant::now",
    "SystemTime::now",
    "thread_rng",
    "from_entropy",
    // Free-threaded spawn completes in scheduler order. Parallelism in
    // the decision-path crates must use scoped spawns whose results are
    // merged in a deterministic order (see `megh-sim::sweep`).
    "thread::spawn",
];

/// Decision-hot-path modules that must carry the file-level
/// `// lint: deny_alloc` marker (the `hot_path_marker` rule).
///
/// The `alloc` rule is opt-in per file; without this list a hot-path
/// module could silently leave the no-alloc regime by dropping its
/// marker. These are the Sherman–Morrison product kernels (DOK and the
/// frozen CSR snapshot), the ε-greedy policy, the agent's decide path,
/// the streaming trace-source layer, and the per-step simulation
/// accounting kernels.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/agent.rs",
    "crates/core/src/hier.rs",
    "crates/core/src/lspi.rs",
    "crates/core/src/policy.rs",
    "crates/linalg/src/csr.rs",
    "crates/linalg/src/dok.rs",
    "crates/linalg/src/sherman.rs",
    "crates/linalg/src/sparse_vec.rs",
    "crates/sim/src/step.rs",
    "crates/trace/src/source.rs",
];

const PANIC_TOKENS: &[&str] = &[
    ".unwrap(",
    ".expect(",
    ".expect_err(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    ".partial_cmp(",
];

/// One scanned file: token-level results plus everything the call-graph
/// pass needs (parsed items, per-line facts, allow bookkeeping).
pub(crate) struct FileScan {
    pub(crate) rel_path: String,
    pub(crate) scope: Scope,
    pub(crate) deny_alloc: bool,
    lines: Vec<LexedLine>,
    directives: Vec<Directives>,
    pub(crate) parsed: items::ParsedFile,
    /// Per line, per class (alloc/panic/nondet): the first *unallowed*
    /// forbidden token, i.e. a fact that propagates through the graph.
    pub(crate) line_facts: Vec<[Option<&'static str>; 3]>,
    /// Direct (token-level) violations, in line order.
    violations: Vec<Violation>,
    /// Every allow directive outside tests/doc comments: (line idx, name).
    allow_sites: Vec<(usize, String)>,
    /// Directive occurrences that suppressed something real.
    used: BTreeSet<(usize, String)>,
}

impl FileScan {
    /// Directive lookup for line `idx`: inline on the line itself wins,
    /// else a directive alone on the directly preceding (code-free)
    /// line. Returns the directive's line index.
    pub(crate) fn allow_site(&self, idx: usize, name: &str) -> Option<usize> {
        allow_site(&self.lines, &self.directives, idx, name)
    }

    /// Marks the directive at `idx` as live for `name`.
    pub(crate) fn credit(&mut self, idx: usize, name: &str) {
        self.used.insert((idx, name.to_string()));
    }

    /// The `depth_budget(N)` directive for the signature at line `idx`:
    /// inline on the line itself, or alone on the directly preceding
    /// (code-free) comment line — same placement grammar as `allow`,
    /// so rustfmt-driven comment relocation cannot detach a budget.
    /// The `ordered_merge` directive for line `idx`: inline on the
    /// line itself, or alone on the directly preceding (code-free)
    /// comment line. Returns the directive's line index.
    pub(crate) fn ordered_merge_at(&self, idx: usize) -> Option<usize> {
        if self.directives.get(idx).is_some_and(|d| d.ordered_merge) {
            return Some(idx);
        }
        if idx > 0 && !self.lines[idx - 1].has_code() && self.directives[idx - 1].ordered_merge {
            return Some(idx - 1);
        }
        None
    }

    pub(crate) fn depth_budget_at(&self, idx: usize) -> Option<u64> {
        if let Some(budget) = self.directives.get(idx).and_then(|d| d.depth_budget) {
            return Some(budget);
        }
        if idx > 0 && !self.lines[idx - 1].has_code() {
            return self.directives[idx - 1].depth_budget;
        }
        None
    }
}

fn allow_site(
    lines: &[LexedLine],
    directives: &[Directives],
    idx: usize,
    name: &str,
) -> Option<usize> {
    if directives
        .get(idx)
        .is_some_and(|d| d.allows.iter().any(|a| a == name))
    {
        return Some(idx);
    }
    if idx > 0 && !lines[idx - 1].has_code() && directives[idx - 1].allows.iter().any(|a| a == name)
    {
        return Some(idx - 1);
    }
    None
}

/// Marks lines inside `#[cfg(test)] mod ... { }` blocks via brace depth.
fn compute_in_test(lines: &[LexedLine]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending_cfg_test = false;
    let mut test_close_depth: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        if test_close_depth.is_some() {
            in_test[idx] = true;
        }
        if line.code.contains("#[cfg(test)]") {
            pending_cfg_test = true;
        }
        let mut line_opens_test = false;
        if pending_cfg_test && has_token(&line.code, "mod") {
            line_opens_test = true;
            pending_cfg_test = false;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if line_opens_test && test_close_depth.is_none() {
                        test_close_depth = Some(depth);
                        in_test[idx] = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_close_depth == Some(depth) {
                        test_close_depth = None;
                    }
                }
                _ => {}
            }
        }
    }
    in_test
}

/// What the upward walk above a `pub fn` found.
enum DocStatus {
    /// A doc comment: the rule is satisfied.
    Doc,
    /// An `allow(missing_docs)` directive at this line index.
    Allowed(usize),
    /// Neither.
    Missing,
}

/// Walk upward from a `pub fn` line over attributes and blank lines looking
/// for a doc comment or an explicit `allow(missing_docs)` directive.
fn doc_status(lines: &[LexedLine], directives: &[Directives], idx: usize) -> DocStatus {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        if directives[i].allows.iter().any(|a| a == "missing_docs") {
            return DocStatus::Allowed(i);
        }
        if line.is_doc {
            return DocStatus::Doc;
        }
        let code = line.code.trim();
        // Skip attribute lines (possibly spanning multiple lines) and blanks.
        let is_attr = code.starts_with("#[") || code.ends_with(']') && !code.contains('{');
        if code.is_empty() || is_attr {
            continue;
        }
        return DocStatus::Missing;
    }
    DocStatus::Missing
}

/// Token-level scan of one file (everything except the graph rules).
fn scan_file(rel_path: &str, source: &str) -> FileScan {
    let scope = scope_for(rel_path);
    let lines = lex(source);
    // Doc comments describe directives without enacting them; only plain
    // comments carry `lint:` annotations.
    let directives: Vec<Directives> = lines
        .iter()
        .map(|l| {
            if l.is_doc {
                Directives::default()
            } else {
                parse_directives(&l.comment)
            }
        })
        .collect();
    let deny_alloc = directives.iter().any(|d| d.deny_alloc);

    let mut violations = Vec::new();
    let rel_normalized = rel_path.replace('\\', "/");
    if HOT_PATH_FILES.contains(&rel_normalized.as_str()) && !deny_alloc {
        violations.push(Violation {
            file: rel_path.to_string(),
            line: 1,
            rule: "hot_path_marker",
            related: Vec::new(),
            message: "decision-hot-path module must carry the `// lint: deny_alloc` marker"
                .to_string(),
        });
    }

    let in_test = compute_in_test(&lines);
    let parsed = items::parse_file(&lines, &in_test);

    let mut line_facts: Vec<[Option<&'static str>; 3]> = vec![[None; 3]; lines.len()];
    let mut used: BTreeSet<(usize, String)> = BTreeSet::new();

    for (idx, line) in lines.iter().enumerate() {
        if !line.has_code() || in_test[idx] {
            continue;
        }
        let lineno = idx + 1;
        let code = &line.code;

        // The three propagated classes share one shape: an allowed token
        // is *vetted* (credits its directive, leaves no fact); an
        // unallowed token is a fact everywhere and a violation in scope.
        let alloc_allow = allow_site(&lines, &directives, idx, "alloc");
        for token in ALLOC_TOKENS {
            if has_token(code, token) {
                if let Some(site) = alloc_allow {
                    used.insert((site, "alloc".to_string()));
                } else {
                    if line_facts[idx][0].is_none() {
                        line_facts[idx][0] = Some(token);
                    }
                    if deny_alloc {
                        violations.push(Violation {
                            file: rel_path.to_string(),
                            line: lineno,
                            rule: "alloc",
                            related: Vec::new(),
                            message: format!(
                                "heap-constructor token `{}` in a deny_alloc module",
                                token.trim_matches(&['.', '(', ':', '<'][..])
                            ),
                        });
                    }
                }
            }
        }

        let nondet_allow = allow_site(&lines, &directives, idx, "nondet");
        for token in NONDET_TOKENS {
            if has_token(code, token) {
                if let Some(site) = nondet_allow {
                    used.insert((site, "nondet".to_string()));
                } else {
                    if line_facts[idx][2].is_none() {
                        line_facts[idx][2] = Some(token);
                    }
                    if scope.deterministic {
                        violations.push(Violation {
                            file: rel_path.to_string(),
                            line: lineno,
                            rule: "nondet",
                            related: Vec::new(),
                            message: format!(
                                "nondeterministic construct `{token}` in a decision-path crate (use BTreeMap/BTreeSet or a seeded RNG)"
                            ),
                        });
                    }
                }
            }
        }

        let panic_allow = allow_site(&lines, &directives, idx, "panic");
        for token in PANIC_TOKENS {
            if has_token(code, token) {
                if let Some(site) = panic_allow {
                    used.insert((site, "panic".to_string()));
                } else {
                    if line_facts[idx][1].is_none() {
                        line_facts[idx][1] = Some(token);
                    }
                    if scope.no_panic || (scope.nan_cmp && *token == ".partial_cmp(") {
                        violations.push(Violation {
                            file: rel_path.to_string(),
                            line: lineno,
                            rule: "panic",
                            related: Vec::new(),
                            message: format!(
                                "potential panic path `{}` in library code (return a typed error or use total_cmp)",
                                token.trim_matches(&['.', '('][..])
                            ),
                        });
                    }
                }
            }
        }

        if scope.docs {
            let trimmed = code.trim_start();
            let is_pub_fn = trimmed.starts_with("pub fn ")
                || trimmed.starts_with("pub const fn ")
                || trimmed.starts_with("pub unsafe fn ")
                || trimmed.starts_with("pub async fn ");
            if is_pub_fn {
                match doc_status(&lines, &directives, idx) {
                    DocStatus::Doc => {}
                    DocStatus::Allowed(site) => {
                        used.insert((site, "missing_docs".to_string()));
                    }
                    DocStatus::Missing => {
                        if let Some(site) = allow_site(&lines, &directives, idx, "missing_docs") {
                            used.insert((site, "missing_docs".to_string()));
                        } else {
                            violations.push(Violation {
                                file: rel_path.to_string(),
                                line: lineno,
                                rule: "missing_docs",
                                related: Vec::new(),
                                message: "pub fn without a doc comment".to_string(),
                            });
                        }
                    }
                }
            }
        }

        if scope.no_unsafe && has_token(code, "unsafe") {
            if let Some(site) = allow_site(&lines, &directives, idx, "unsafe_code") {
                used.insert((site, "unsafe_code".to_string()));
            } else {
                violations.push(Violation {
                    file: rel_path.to_string(),
                    line: lineno,
                    rule: "unsafe_code",
                    related: Vec::new(),
                    message: "`unsafe` outside the annotated allowlist".to_string(),
                });
            }
        }
    }

    // Inventory every allow directive (outside tests; doc-comment
    // directives are inert by construction).
    let mut allow_sites = Vec::new();
    for (idx, d) in directives.iter().enumerate() {
        if in_test[idx] {
            continue;
        }
        for name in &d.allows {
            allow_sites.push((idx, name.clone()));
        }
    }

    FileScan {
        rel_path: rel_normalized,
        scope,
        deny_alloc,
        lines,
        directives,
        parsed,
        line_facts,
        violations,
        allow_sites,
        used,
    }
}

/// Scan one file's source, returning every *token-level* violation.
///
/// `rel_path` is the workspace-relative path used both for scope decisions
/// and for reporting. The call-graph rules (`transitive_*`, `dead_allow`)
/// need the whole corpus — use [`analyze_sources`] / [`analyze_root`] for
/// those.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Violation> {
    scan_file(rel_path, source).violations
}

/// A full analysis: every violation plus the machine-readable report.
pub struct Analysis {
    /// All violations (token, transitive, and dead-allow), sorted by
    /// (file, line, rule).
    pub violations: Vec<Violation>,
    /// The `LINT_REPORT.json` content for this corpus.
    pub report: LintReport,
    /// Structured dead-allow sites for `--fix`: (file, 0-based line
    /// index, allow name).
    pub dead_allows: Vec<(String, usize, String)>,
}

/// Analyze a set of in-memory sources as one corpus: token rules per
/// file, then the cross-file call-graph rules and the allow inventory.
pub fn analyze_sources(sources: &[(String, String)]) -> Analysis {
    let mut files: Vec<FileScan> = sources
        .iter()
        .map(|(rel, src)| scan_file(rel, src))
        .collect();
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));

    let outcome = graph::analyze(&mut files);
    let flow = dataflow::analyze(&mut files, &outcome);

    let mut violations: Vec<Violation> = files.iter().flat_map(|f| f.violations.clone()).collect();
    violations.extend(outcome.violations.iter().cloned());
    violations.extend(flow.violations.iter().cloned());

    // Dead-escape detection: a directive nothing credited is stale.
    let mut dead_allows: Vec<(String, usize, String)> = Vec::new();
    for file in &files {
        for (idx, name) in &file.allow_sites {
            if !file.used.contains(&(*idx, name.clone())) {
                dead_allows.push((file.rel_path.clone(), *idx, name.clone()));
                violations.push(Violation {
                    file: file.rel_path.clone(),
                    line: idx + 1,
                    rule: "dead_allow",
                    related: Vec::new(),
                    message: format!(
                        "allow({name}) no longer suppresses anything (stale escape hatch — remove it)"
                    ),
                });
            }
        }
    }

    violations.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });

    let rules = RULES
        .iter()
        .map(|rule| RuleCount {
            rule: (*rule).to_string(),
            violations: violations.iter().filter(|v| v.rule == *rule).count(),
        })
        .collect();

    let panic_stats: std::collections::BTreeMap<(usize, usize), (usize, usize)> = flow
        .fn_stats
        .iter()
        .map(|s| ((s.file, s.item), (s.sites, s.discharged)))
        .collect();
    let mut functions: Vec<FnEntry> = outcome
        .fns
        .iter()
        .filter(|g| files[g.file].deny_alloc)
        .map(|g| {
            let item = &files[g.file].parsed.fns[g.item];
            let stats = panic_stats.get(&(g.file, g.item));
            FnEntry {
                function: g.qname.clone(),
                file: files[g.file].rel_path.clone(),
                line: item.sig_line + 1,
                direct_alloc: g.facts[0],
                direct_panic: g.facts[1],
                direct_nondet: g.facts[2],
                transitive_alloc: g.eff[0],
                transitive_panic: g.eff[1],
                transitive_nondet: g.eff[2],
                implicit_panic_sites: stats.map(|(s, _)| *s),
                implicit_panic_discharged: stats.map(|(_, d)| *d),
            }
        })
        .collect();
    functions.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.function.cmp(&b.function))
    });

    let mut allows: Vec<AllowEntry> = files
        .iter()
        .flat_map(|f| {
            f.allow_sites.iter().map(|(idx, name)| AllowEntry {
                file: f.rel_path.clone(),
                line: idx + 1,
                name: name.clone(),
                live: f.used.contains(&(*idx, name.clone())),
            })
        })
        .collect();
    allows.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.name.cmp(&b.name))
    });

    let stats = ReportStats {
        files: files.len(),
        functions: outcome.fns.len(),
        call_edges: outcome.edge_count,
        hot_functions: functions.len(),
    };

    Analysis {
        violations,
        dead_allows,
        report: LintReport {
            schema: SCHEMA_VERSION,
            rules,
            functions,
            allows,
            lock_order: Some(outcome.lock_order),
            guards: Some(outcome.guards),
            depth_budgets: Some(outcome.depth_budgets),
            implicit_panic: Some(report::ImplicitPanicSection {
                sites: flow.hot_sites,
                discharged: flow.hot_discharged,
                vouched: flow.hot_vouched,
            }),
            stats,
        },
    }
}

/// Runs the interval abstract interpreter over the first function of
/// `source` in isolation and returns each local's final `(lo, hi)`
/// integer interval — the public hook the interval-soundness proptest
/// drives (random straight-line programs are executed concretely and
/// asserted to land inside these bounds).
pub fn infer_intervals(source: &str) -> std::collections::BTreeMap<String, (i128, i128)> {
    dataflow::snippet_intervals(source)
}

/// Collects every eligible `.rs` file under `root` (sorted walk).
fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut sources = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if path.is_dir() {
                let skip = rel == "target"
                    || rel == "vendor"
                    || rel == ".git"
                    || rel.ends_with("/target")
                    || rel == "crates/lint/tests";
                if !skip {
                    stack.push(path);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                let scan = rel.starts_with("crates/") || rel.starts_with("src/");
                if scan {
                    let source = fs::read_to_string(&path)?;
                    sources.push((rel, source));
                }
            }
        }
    }
    sources.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(sources)
}

/// Analyze every eligible `.rs` file under `root` as one corpus.
///
/// Scans `crates/*/src` and the facade `src/`; skips `vendor/` (shims stand
/// in for external crates and are not held to workspace rules), `target/`,
/// and this crate's own test fixtures.
///
/// # Errors
///
/// Returns any underlying I/O error from the directory walk.
pub fn analyze_root(root: &Path) -> io::Result<Analysis> {
    Ok(analyze_sources(&collect_sources(root)?))
}

/// Recursively scan every eligible `.rs` file under `root`, returning
/// every violation (token, transitive, and dead-allow rules).
///
/// # Errors
///
/// Returns any underlying I/O error from the directory walk.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(analyze_root(root)?.violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_blanks_strings_and_comments() {
        let lines = lex("let x = \"Vec::new()\"; // Vec::new in comment\n");
        assert!(!lines[0].code.contains("Vec::new"));
        assert!(lines[0].comment.contains("Vec::new"));
    }

    #[test]
    fn lexer_handles_lifetimes_and_char_literals() {
        let lines = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }\n");
        assert!(lines[0].code.contains("'a str"));
        assert!(!lines[0].code.contains("\\n"));
    }

    #[test]
    fn directive_parsing() {
        let d = parse_directives(" lint: allow(panic, alloc)");
        assert_eq!(d.allows, vec!["panic", "alloc"]);
        assert!(parse_directives(" lint: deny_alloc").deny_alloc);
    }

    #[test]
    fn bench_scope_flags_partial_cmp_but_not_expect() {
        let sorted = "fn f(xs: &mut Vec<f64>) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let violations = scan_source("crates/bench/src/bin/fig0.rs", sorted);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].rule, "panic");
        assert!(violations[0].message.contains("partial_cmp"));
        // Fail-fast expect stays idiomatic in experiment binaries.
        let failfast = "fn f() { std::fs::read(\"x\").expect(\"boom\"); }\n";
        assert!(scan_source("crates/bench/src/bin/fig0.rs", failfast).is_empty());
        // Outside the bench scope nothing changed.
        assert!(scan_source("examples/demo.rs", sorted).is_empty());
    }

    #[test]
    fn cfg_gated_functions_stay_out_of_the_call_graph() {
        let hot = |attr: &str| {
            format!(
                "// lint: deny_alloc\npub struct S;\nimpl S {{\n    pub fn hot(&self) {{ self.gated(); }}\n{attr}    fn gated(&self) {{ helper(); }}\n}}\n"
            )
        };
        let helper = "pub fn helper() -> Vec<u8> { vec![1] }\n".to_string();
        // Ungated: `gated` reaches the allocating helper -> transitive_alloc.
        let sources = [
            ("crates/core/src/a.rs".to_string(), hot("")),
            ("crates/core/src/b.rs".to_string(), helper.clone()),
        ];
        let analysis = analyze_sources(&sources);
        assert!(
            analysis
                .violations
                .iter()
                .any(|v| v.rule == "transitive_alloc"),
            "{:?}",
            analysis.violations
        );
        // Feature-gated: the function is not in the always-on build, so
        // no vouch is needed and nothing fires.
        let sources = [
            (
                "crates/core/src/a.rs".to_string(),
                hot("    #[cfg(feature = \"check-invariants\")]\n"),
            ),
            ("crates/core/src/b.rs".to_string(), helper),
        ];
        let analysis = analyze_sources(&sources);
        assert!(
            analysis
                .violations
                .iter()
                .all(|v| !v.rule.starts_with("transitive_")),
            "{:?}",
            analysis.violations
        );
    }

    #[test]
    fn cfg_gated_call_sites_stay_out_of_the_call_graph() {
        // The callee is always compiled (it has a node), but the *call*
        // is feature-gated — the check-invariants hook shape:
        //     #[cfg(feature = "...")]
        //     self.verify(...);
        // inside an ungated hot function. Without call-site awareness
        // the edge would demand an `allow(transitive_alloc)` vouch.
        let hot = |attr: &str| {
            format!(
                "// lint: deny_alloc\npub struct S;\nimpl S {{\n    pub fn hot(&self) {{\n{attr}        self.verify();\n    }}\n    fn verify(&self) {{ helper(); }}\n}}\n"
            )
        };
        let helper = "pub fn helper() -> Vec<u8> { vec![1] }\n".to_string();
        // Ungated call: `hot` reaches the allocating helper through
        // `verify` -> transitive_alloc fires on both.
        let sources = [
            ("crates/core/src/a.rs".to_string(), hot("")),
            ("crates/core/src/b.rs".to_string(), helper.clone()),
        ];
        let analysis = analyze_sources(&sources);
        assert!(
            analysis
                .violations
                .iter()
                .any(|v| v.rule == "transitive_alloc" && v.message.contains("`S::hot`")),
            "{:?}",
            analysis.violations
        );
        // Feature-gated call: the edge is absent from the always-on
        // build, so `hot` stays clean with no vouch. `verify` itself
        // still fires — it *is* always compiled and still allocates.
        let sources = [
            (
                "crates/core/src/a.rs".to_string(),
                hot("        #[cfg(feature = \"check-invariants\")]\n"),
            ),
            ("crates/core/src/b.rs".to_string(), helper),
        ];
        let analysis = analyze_sources(&sources);
        assert!(
            analysis
                .violations
                .iter()
                .all(|v| !(v.rule == "transitive_alloc" && v.message.contains("`S::hot`"))),
            "{:?}",
            analysis.violations
        );
        assert!(
            analysis
                .violations
                .iter()
                .any(|v| v.rule == "transitive_alloc" && v.message.contains("`S::verify`")),
            "{:?}",
            analysis.violations
        );
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token(".expect(\"x\")", ".expect("));
        assert!(!has_token(".expect_err(e)", ".expect("));
        assert!(!has_token("#[forbid(unsafe_code)]", "unsafe"));
        assert!(has_token("unsafe impl X {}", "unsafe"));
        assert!(has_token(".collect::<Vec<f64>>()", ".collect::<"));
    }
}
