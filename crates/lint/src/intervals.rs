//! The interval abstract domain for the dataflow pass.
//!
//! Values are closed integer intervals `[lo, hi]` over `i128` with
//! symmetric infinity sentinels far from the representable edge, so
//! saturating arithmetic on bounds can never wrap back into the finite
//! range. The domain is a lattice under inclusion: `join` is the
//! interval hull, `meet` the intersection (empty encoded as
//! `lo > hi`), and `widen` jumps unstable bounds straight to the
//! sentinels — with finitely many widening points per function body,
//! the fixpoint terminates in a bounded number of rounds (see
//! DESIGN §17 for the termination argument).
//!
//! All arithmetic is *conservative*: any operand or operation the
//! transfer functions cannot bound precisely yields `TOP`, which can
//! only ever suppress a discharge, never manufacture one.

/// Negative infinity sentinel (`i128::MIN / 4`: far enough from the
/// edge that saturating bound arithmetic stays on the correct side).
pub const NEG_INF: i128 = i128::MIN / 4;
/// Positive infinity sentinel.
pub const POS_INF: i128 = i128::MAX / 4;

/// A closed integer interval `[lo, hi]`; `lo > hi` encodes bottom
/// (unreachable), `[NEG_INF, POS_INF]` is top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ival {
    /// Inclusive lower bound (`NEG_INF` = unbounded below).
    pub lo: i128,
    /// Inclusive upper bound (`POS_INF` = unbounded above).
    pub hi: i128,
}

/// The unbounded interval.
pub const TOP: Ival = Ival {
    lo: NEG_INF,
    hi: POS_INF,
};

/// The empty (unreachable) interval.
pub const BOTTOM: Ival = Ival { lo: 1, hi: 0 };

/// Clamp a raw bound back into the sentinel range.
fn clamp(x: i128) -> i128 {
    x.clamp(NEG_INF, POS_INF)
}

impl Ival {
    /// The singleton interval `[v, v]`.
    pub fn exact(v: i128) -> Ival {
        let v = clamp(v);
        Ival { lo: v, hi: v }
    }

    /// The interval `[lo, hi]` (clamped into the sentinel range).
    pub fn of(lo: i128, hi: i128) -> Ival {
        Ival {
            lo: clamp(lo),
            hi: clamp(hi),
        }
    }

    /// Whether the interval contains no value.
    pub fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    /// Whether the interval is the single value `v`.
    pub fn is_exactly(self, v: i128) -> bool {
        self.lo == v && self.hi == v
    }

    /// Least upper bound (interval hull).
    pub fn join(self, other: Ival) -> Ival {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Ival {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Greatest lower bound (intersection).
    pub fn meet(self, other: Ival) -> Ival {
        Ival {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Standard widening: a bound that moved between rounds jumps to
    /// its sentinel, so ascending chains stabilise in ≤ 2 steps per
    /// bound.
    pub fn widen(self, next: Ival) -> Ival {
        if self.is_empty() {
            return next;
        }
        if next.is_empty() {
            return self;
        }
        Ival {
            lo: if next.lo < self.lo { NEG_INF } else { self.lo },
            hi: if next.hi > self.hi { POS_INF } else { self.hi },
        }
    }

    /// Abstract addition (bound-wise, saturating at the sentinels).
    pub fn add(self, other: Ival) -> Ival {
        if self.is_empty() || other.is_empty() {
            return BOTTOM;
        }
        Ival::of(
            if self.lo == NEG_INF || other.lo == NEG_INF {
                NEG_INF
            } else {
                self.lo.saturating_add(other.lo)
            },
            if self.hi == POS_INF || other.hi == POS_INF {
                POS_INF
            } else {
                self.hi.saturating_add(other.hi)
            },
        )
    }

    /// Abstract subtraction.
    pub fn sub(self, other: Ival) -> Ival {
        if self.is_empty() || other.is_empty() {
            return BOTTOM;
        }
        Ival::of(
            if self.lo == NEG_INF || other.hi == POS_INF {
                NEG_INF
            } else {
                self.lo.saturating_sub(other.hi)
            },
            if self.hi == POS_INF || other.lo == NEG_INF {
                POS_INF
            } else {
                self.hi.saturating_sub(other.lo)
            },
        )
    }

    /// Abstract multiplication (all four corner products).
    pub fn mul(self, other: Ival) -> Ival {
        if self.is_empty() || other.is_empty() {
            return BOTTOM;
        }
        let unbounded = |x: i128| x == NEG_INF || x == POS_INF;
        if unbounded(self.lo) || unbounded(self.hi) || unbounded(other.lo) || unbounded(other.hi) {
            // The lower corner is still exact when both operands are
            // non-negative (`i * lanes` on usize): the product is at
            // least `lo · lo` even through unbounded upper bounds.
            if self.lo >= 0 && other.lo >= 0 {
                return Ival::of(self.lo.saturating_mul(other.lo), POS_INF);
            }
            return TOP;
        }
        let corners = [
            self.lo.saturating_mul(other.lo),
            self.lo.saturating_mul(other.hi),
            self.hi.saturating_mul(other.lo),
            self.hi.saturating_mul(other.hi),
        ];
        Ival::of(
            corners.iter().copied().min().unwrap_or(NEG_INF),
            corners.iter().copied().max().unwrap_or(POS_INF),
        )
    }

    /// Abstract division. Division *safety* (nonzero divisor) is judged
    /// separately at the site; the transfer function here only bounds
    /// the result, and only in the easy all-non-negative case.
    pub fn div(self, other: Ival) -> Ival {
        if self.is_empty() || other.is_empty() {
            return BOTTOM;
        }
        if self.lo >= 0 && other.lo >= 1 && self.hi < POS_INF {
            return Ival::of(self.lo / other.hi.clamp(1, POS_INF - 1), self.hi / other.lo);
        }
        if self.lo >= 0 && other.lo >= 1 {
            return Ival::of(0, POS_INF);
        }
        TOP
    }

    /// Abstract remainder: for a non-negative dividend and a positive
    /// bounded divisor, the result sits in `[0, max_divisor - 1]`.
    pub fn rem(self, other: Ival) -> Ival {
        if self.is_empty() || other.is_empty() {
            return BOTTOM;
        }
        if self.lo >= 0 && other.lo >= 1 {
            let cap = if other.hi == POS_INF {
                POS_INF
            } else {
                other.hi - 1
            };
            return Ival::of(0, cap.min(self.hi));
        }
        TOP
    }

    /// Human-readable rendering for witness messages: `[0, len)`-style
    /// with `-inf`/`+inf` for the sentinels.
    pub fn render(self) -> String {
        let side = |v: i128, neg: bool| {
            if v <= NEG_INF && neg {
                "-inf".to_string()
            } else if v >= POS_INF && !neg {
                "+inf".to_string()
            } else {
                v.to_string()
            }
        };
        format!("[{}, {}]", side(self.lo, true), side(self.hi, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_ops() {
        let a = Ival::of(0, 10);
        let b = Ival::of(5, 20);
        assert_eq!(a.join(b), Ival::of(0, 20));
        assert_eq!(a.meet(b), Ival::of(5, 10));
        assert!(Ival::of(5, 3).is_empty());
        assert_eq!(BOTTOM.join(a), a);
        assert_eq!(a.meet(TOP), a);
    }

    #[test]
    fn widening_jumps_to_sentinels() {
        let a = Ival::of(0, 4);
        let grown = Ival::of(0, 5);
        let w = a.widen(grown);
        assert_eq!(w.lo, 0);
        assert_eq!(w.hi, POS_INF);
        // A stable bound stays put.
        assert_eq!(a.widen(a), a);
    }

    #[test]
    fn arithmetic_saturates_at_sentinels() {
        let top = TOP;
        assert_eq!(top.add(Ival::exact(1)), top);
        let half = Ival::of(0, POS_INF);
        assert_eq!(half.add(Ival::exact(1)).hi, POS_INF);
        assert_eq!(half.add(Ival::exact(1)).lo, 1);
        assert_eq!(Ival::exact(3).mul(Ival::exact(4)), Ival::exact(12));
        assert_eq!(Ival::of(0, 10).sub(Ival::of(2, 3)), Ival::of(-3, 8));
    }

    #[test]
    fn rem_bounds_by_divisor() {
        assert_eq!(Ival::of(0, POS_INF).rem(Ival::exact(8)), Ival::of(0, 7));
        assert_eq!(Ival::of(0, 3).rem(Ival::exact(100)), Ival::of(0, 3));
        assert_eq!(Ival::of(-5, 5).rem(Ival::exact(8)), TOP);
    }

    #[test]
    fn div_non_negative_case() {
        assert_eq!(Ival::of(10, 20).div(Ival::exact(2)), Ival::of(5, 10));
        assert_eq!(Ival::of(-1, 20).div(Ival::exact(2)), TOP);
    }
}
