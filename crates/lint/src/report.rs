//! The machine-readable lint artifact (`LINT_REPORT.json`) and the
//! `lint-diff` comparison against the committed snapshot.
//!
//! The report is committed per PR like `BENCH_decision_latency.json`:
//! per-rule violation counts, the per-function property table for every
//! hot-path (deny_alloc) function, and the allow-directive inventory
//! with liveness. Every field is a pure function of the source tree —
//! no timestamps, no wall-clock, sorted collections — so the bytes are
//! reproducible on any machine and diffable across PRs.
//!
//! `lint-diff` mirrors `bench-diff`: *fatal* when a function present in
//! both snapshots gains a property it did not have (a previously-clean
//! function regressed), *non-fatal notes* for count drift, new/removed
//! functions, and allow-inventory churn.

use serde::{Deserialize, Serialize};

/// One rule's violation count at HEAD (0 in a clean tree).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleCount {
    /// Rule class name.
    pub rule: String,
    /// Violations found in the scan.
    pub violations: usize,
}

/// One hot-path function's property row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FnEntry {
    /// Qualified display name (`Type::name` or `name`).
    pub function: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based signature line.
    pub line: usize,
    /// Direct may-allocate fact (unallowed token in the body).
    pub direct_alloc: bool,
    /// Direct may-panic fact.
    pub direct_panic: bool,
    /// Direct nondeterminism fact.
    pub direct_nondet: bool,
    /// Transitive may-allocate (call-graph closure).
    pub transitive_alloc: bool,
    /// Transitive may-panic.
    pub transitive_panic: bool,
    /// Transitive nondeterminism taint.
    pub transitive_nondet: bool,
    /// Implicit panic sites enumerated by the interval engine (v4;
    /// `Option` so v3 snapshots still parse).
    pub implicit_panic_sites: Option<usize>,
    /// Of those, the count proven safe (v4, optional as above).
    pub implicit_panic_discharged: Option<usize>,
}

impl FnEntry {
    /// Property accessors in a fixed order, paired with their names —
    /// the diff walks these.
    fn properties(&self) -> [(&'static str, bool); 6] {
        [
            ("direct_alloc", self.direct_alloc),
            ("direct_panic", self.direct_panic),
            ("direct_nondet", self.direct_nondet),
            ("transitive_alloc", self.transitive_alloc),
            ("transitive_panic", self.transitive_panic),
            ("transitive_nondet", self.transitive_nondet),
        ]
    }
}

/// One edge of the acquisition-order digraph: while a guard on `from`
/// is held, `to` is (or may, through calls, be) acquired.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockOrderEdge {
    /// Lock held (last receiver-chain segment, e.g. `snapshot`).
    pub from: String,
    /// Lock acquired under it.
    pub to: String,
    /// Workspace-relative file of the inner acquisition or call.
    pub file: String,
    /// 1-based line of that site.
    pub line: usize,
    /// Function holding the outer guard.
    pub function: String,
}

/// The lock-order section: the full digraph plus detected cycles.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LockOrderSection {
    /// All order edges, (from, to) sorted.
    pub edges: Vec<LockOrderEdge>,
    /// Strongly-connected components of ≥2 locks (each sorted; empty in
    /// a deadlock-free tree).
    pub cycles: Vec<Vec<String>>,
}

/// One let-bound lock guard and how risky its live range is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuardEntry {
    /// Function owning the guard.
    pub function: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based acquisition line.
    pub line: usize,
    /// Full receiver chain of the lock (`self.shared.snapshot`).
    pub lock: String,
    /// 1-based line of the `}` closing the guard's block.
    pub held_to_line: usize,
    /// Blocking operations (direct or via calls) inside the live range.
    /// Non-zero entries exist only under an explicit vouch.
    pub risky_ops: usize,
}

/// One budgeted function's measured transitive call depth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthBudgetEntry {
    /// Qualified display name.
    pub function: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based signature line (where `depth_budget(N)` sits inline).
    pub line: usize,
    /// The committed ceiling.
    pub budget: u64,
    /// Longest workspace call chain; `None` = reaches a recursive cycle.
    pub depth: Option<u64>,
}

/// Corpus-level implicit-panic totals over the hot-path files.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ImplicitPanicSection {
    /// Sites enumerated across `HOT_PATH_FILES`.
    pub sites: usize,
    /// Sites the interval engine proved safe.
    pub discharged: usize,
    /// Undischarged sites silenced by `// lint: allow(implicit_panic)`.
    pub vouched: usize,
}

/// One `// lint: allow(...)` directive occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllowEntry {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based directive line.
    pub line: usize,
    /// Allowed rule name.
    pub name: String,
    /// Whether the directive still suppresses something real.
    pub live: bool,
}

/// Corpus-level totals.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReportStats {
    /// Files scanned.
    pub files: usize,
    /// Non-test functions parsed.
    pub functions: usize,
    /// Resolved intra-workspace call edges.
    pub call_edges: usize,
    /// Functions in deny_alloc (hot-path) files — the property table.
    pub hot_functions: usize,
}

/// The committed per-PR lint artifact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// Schema version for forward compatibility.
    pub schema: usize,
    /// Per-rule violation counts, fixed rule order.
    pub rules: Vec<RuleCount>,
    /// Property table for hot-path functions, (file, line) order.
    pub functions: Vec<FnEntry>,
    /// Allow-directive inventory, (file, line, name) order.
    pub allows: Vec<AllowEntry>,
    /// Acquisition-order digraph and cycles. `Option` so pre-v3
    /// snapshots (where the key is absent) still parse — the vendored
    /// serde shim maps missing keys to `None`.
    pub lock_order: Option<LockOrderSection>,
    /// Let-bound guard inventory, (file, line) order (v3, optional as
    /// above).
    pub guards: Option<Vec<GuardEntry>>,
    /// Depth-budget table, (file, line) order (v3, optional as above).
    pub depth_budgets: Option<Vec<DepthBudgetEntry>>,
    /// Hot-path implicit-panic totals (v4, optional as above).
    pub implicit_panic: Option<ImplicitPanicSection>,
    /// Corpus totals.
    pub stats: ReportStats,
}

/// Current schema version: 4, matching the analyzer generation that
/// added the interval dataflow engine (implicit-panic discharge counts
/// per hot function plus the corpus totals section); v3 added the
/// lock-order, guard, and depth-budget sections, and the original
/// call-graph property table shipped as schema 1.
pub const SCHEMA_VERSION: usize = 4;

/// File name of the committed snapshot at the workspace root.
pub const REPORT_FILE: &str = "LINT_REPORT.json";

/// A diff between the committed snapshot and the current scan.
#[derive(Debug, Clone, Default)]
pub struct ReportDiff {
    /// Regressions that must fail CI (`error:` lines).
    pub fatal: Vec<String>,
    /// Non-fatal drift (`note:` lines).
    pub notes: Vec<String>,
}

impl ReportDiff {
    /// True when nothing moved at all.
    pub fn is_clean(&self) -> bool {
        self.fatal.is_empty() && self.notes.is_empty()
    }
}

/// Compares the committed snapshot (`prev`) against the current scan
/// (`cur`).
///
/// Fatal: a function present in both whose any property flipped
/// `false -> true` (a previously-clean function gained a violating
/// property), and any increase in a rule's violation count above zero.
/// Notes: everything else that moved — recovered properties, function
/// table churn, allow-inventory churn, stats drift.
pub fn diff_reports(prev: &LintReport, cur: &LintReport) -> ReportDiff {
    let mut diff = ReportDiff::default();

    for rule in &cur.rules {
        let before = prev
            .rules
            .iter()
            .find(|r| r.rule == rule.rule)
            .map_or(0, |r| r.violations);
        if rule.violations > before {
            diff.fatal.push(format!(
                "rule `{}` went from {} to {} violation(s)",
                rule.rule, before, rule.violations
            ));
        } else if rule.violations < before {
            diff.notes.push(format!(
                "rule `{}` dropped from {} to {} violation(s)",
                rule.rule, before, rule.violations
            ));
        }
    }

    // Function rows are paired by (file, qualified name, occurrence
    // ordinal): a trait-impl wrapper and an inherent method can share a
    // qualified name within one file (`CsrMatrix::mul_sparse_vec_into`),
    // and rows are (file, line)-sorted, so the k-th occurrence on each
    // side is the same function even as line numbers drift.
    let nth_match = |list: &[FnEntry], entry: &FnEntry, n: usize| -> Option<usize> {
        list.iter()
            .enumerate()
            .filter(|(_, f)| f.function == entry.function && f.file == entry.file)
            .map(|(i, _)| i)
            .nth(n)
    };
    let mut seen: std::collections::BTreeMap<(&str, &str), usize> = Default::default();
    for entry in &cur.functions {
        let ordinal = seen
            .entry((entry.file.as_str(), entry.function.as_str()))
            .or_insert(0);
        let before = nth_match(&prev.functions, entry, *ordinal).map(|i| &prev.functions[i]);
        *ordinal += 1;
        match before {
            None => diff
                .notes
                .push(format!("new hot-path function `{}`", entry.function)),
            Some(before) => {
                for ((name, now), (_, was)) in
                    entry.properties().iter().zip(before.properties().iter())
                {
                    if *now && !*was {
                        diff.fatal.push(format!(
                            "`{}` gained {} (was clean in the committed snapshot)",
                            entry.function, name
                        ));
                    } else if !*now && *was {
                        diff.notes
                            .push(format!("`{}` lost {}", entry.function, name));
                    }
                }
                // Interval-engine regression gates: a site leaving the
                // "proven safe" bucket (discharged → vouched) is as
                // fatal as a gained property.
                if let (Some(ps), Some(pd), Some(cs), Some(cd)) = (
                    before.implicit_panic_sites,
                    before.implicit_panic_discharged,
                    entry.implicit_panic_sites,
                    entry.implicit_panic_discharged,
                ) {
                    let was_open = ps.saturating_sub(pd);
                    let now_open = cs.saturating_sub(cd);
                    if now_open > was_open {
                        diff.fatal.push(format!(
                            "`{}` undischarged implicit-panic sites grew from {} to {}",
                            entry.function, was_open, now_open
                        ));
                    } else if now_open < was_open {
                        diff.notes.push(format!(
                            "`{}` undischarged implicit-panic sites dropped from {} to {}",
                            entry.function, was_open, now_open
                        ));
                    }
                    if cd < pd && cs >= ps {
                        diff.fatal.push(format!(
                            "`{}` implicit-panic discharges fell from {} to {} (discharged → vouched regression)",
                            entry.function, pd, cd
                        ));
                    }
                }
            }
        }
    }
    let mut seen_prev: std::collections::BTreeMap<(&str, &str), usize> = Default::default();
    for before in &prev.functions {
        let ordinal = seen_prev
            .entry((before.file.as_str(), before.function.as_str()))
            .or_insert(0);
        if nth_match(&cur.functions, before, *ordinal).is_none() {
            diff.notes.push(format!(
                "hot-path function `{}` no longer present",
                before.function
            ));
        }
        *ordinal += 1;
    }

    let key = |a: &AllowEntry| (a.file.clone(), a.line, a.name.clone());
    for allow in &cur.allows {
        match prev.allows.iter().find(|a| key(a) == key(allow)) {
            None => diff.notes.push(format!(
                "new allow({}) at {}:{}",
                allow.name, allow.file, allow.line
            )),
            Some(before) if before.live != allow.live => diff.notes.push(format!(
                "allow({}) at {}:{} went {}",
                allow.name,
                allow.file,
                allow.line,
                if allow.live { "live" } else { "dead" }
            )),
            Some(_) => {}
        }
    }
    let removed = prev
        .allows
        .iter()
        .filter(|a| !cur.allows.iter().any(|b| key(b) == key(a)))
        .count();
    if removed > 0 {
        diff.notes
            .push(format!("{removed} allow directive(s) removed"));
    }

    // Guard section: a guard's live range getting riskier is a
    // regression of the same kind as a gained property.
    let cur_guards = cur.guards.as_deref().unwrap_or(&[]);
    let prev_guards = prev.guards.as_deref().unwrap_or(&[]);
    let gkey = |g: &GuardEntry| (g.file.clone(), g.function.clone(), g.lock.clone());
    for guard in cur_guards {
        match prev_guards.iter().find(|g| gkey(g) == gkey(guard)) {
            None => {
                if guard.risky_ops > 0 {
                    diff.notes.push(format!(
                        "new guard on `{}` in `{}` holds across {} blocking op(s) (vouched)",
                        guard.lock, guard.function, guard.risky_ops
                    ));
                }
            }
            Some(before) if guard.risky_ops > before.risky_ops => diff.fatal.push(format!(
                "guard on `{}` in `{}` now spans {} blocking op(s) (was {})",
                guard.lock, guard.function, guard.risky_ops, before.risky_ops
            )),
            Some(before) if guard.risky_ops < before.risky_ops => diff.notes.push(format!(
                "guard on `{}` in `{}` dropped to {} blocking op(s) (was {})",
                guard.lock, guard.function, guard.risky_ops, before.risky_ops
            )),
            Some(_) => {}
        }
    }

    // Lock-order section: a cycle that was not in the committed
    // snapshot is a potential deadlock — fatal. Edge churn is a note.
    let default_lo = LockOrderSection::default();
    let cur_lo = cur.lock_order.as_ref().unwrap_or(&default_lo);
    let prev_lo = prev.lock_order.as_ref().unwrap_or(&default_lo);
    for cycle in &cur_lo.cycles {
        if !prev_lo.cycles.contains(cycle) {
            diff.fatal.push(format!(
                "new lock-order cycle among {{{}}}",
                cycle.join(", ")
            ));
        }
    }
    let ekey = |e: &LockOrderEdge| (e.from.clone(), e.to.clone());
    let added_edges = cur_lo
        .edges
        .iter()
        .filter(|e| !prev_lo.edges.iter().any(|p| ekey(p) == ekey(e)))
        .count();
    let removed_edges = prev_lo
        .edges
        .iter()
        .filter(|e| !cur_lo.edges.iter().any(|p| ekey(p) == ekey(e)))
        .count();
    if added_edges > 0 || removed_edges > 0 {
        diff.notes.push(format!(
            "lock-order edges: {added_edges} added, {removed_edges} removed"
        ));
    }

    // Depth budgets: growth eats committed headroom silently — fatal
    // until the snapshot is regenerated deliberately.
    let cur_depths = cur.depth_budgets.as_deref().unwrap_or(&[]);
    let prev_depths = prev.depth_budgets.as_deref().unwrap_or(&[]);
    let dkey = |d: &DepthBudgetEntry| (d.file.clone(), d.function.clone());
    for entry in cur_depths {
        match prev_depths.iter().find(|d| dkey(d) == dkey(entry)) {
            None => diff.notes.push(format!(
                "new depth budget on `{}` ({} with depth {})",
                entry.function,
                entry.budget,
                match entry.depth {
                    Some(d) => d.to_string(),
                    None => "unbounded".to_string(),
                }
            )),
            Some(before) => match (before.depth, entry.depth) {
                (Some(_), None) => diff.fatal.push(format!(
                    "`{}` call depth became unbounded (reaches a recursive cycle)",
                    entry.function
                )),
                (Some(was), Some(now)) if now > was => diff.fatal.push(format!(
                    "`{}` call depth grew from {} to {} (budget {})",
                    entry.function, was, now, entry.budget
                )),
                (Some(was), Some(now)) if now < was => diff.notes.push(format!(
                    "`{}` call depth dropped from {} to {}",
                    entry.function, was, now
                )),
                _ => {
                    if before.budget != entry.budget {
                        diff.notes.push(format!(
                            "`{}` budget changed from {} to {}",
                            entry.function, before.budget, entry.budget
                        ));
                    }
                }
            },
        }
    }
    for before in prev_depths {
        if !cur_depths.iter().any(|d| dkey(d) == dkey(before)) {
            diff.notes
                .push(format!("depth budget on `{}` removed", before.function));
        }
    }

    // Corpus implicit-panic totals: losing proofs or leaning harder on
    // vouches is a regression of the v4 contract.
    if let (Some(p), Some(c)) = (&prev.implicit_panic, &cur.implicit_panic) {
        if c.discharged < p.discharged && c.sites >= p.sites {
            diff.fatal.push(format!(
                "hot-path implicit-panic discharges fell from {} to {}",
                p.discharged, c.discharged
            ));
        }
        if c.vouched > p.vouched {
            diff.fatal.push(format!(
                "hot-path implicit-panic vouches grew from {} to {} (prove, don't vouch)",
                p.vouched, c.vouched
            ));
        }
        if p != c && diff.fatal.is_empty() {
            diff.notes.push(format!(
                "implicit-panic totals: sites {} -> {}, discharged {} -> {}, vouched {} -> {}",
                p.sites, c.sites, p.discharged, c.discharged, p.vouched, c.vouched
            ));
        }
    }

    if prev.stats != cur.stats {
        diff.notes.push(format!(
            "stats: files {} -> {}, functions {} -> {}, call edges {} -> {}, hot functions {} -> {}",
            prev.stats.files,
            cur.stats.files,
            prev.stats.functions,
            cur.stats.functions,
            prev.stats.call_edges,
            cur.stats.call_edges,
            prev.stats.hot_functions,
            cur.stats.hot_functions
        ));
    }

    diff
}

/// Renders a diff in the `bench-diff` style: one `error:` line per
/// fatal regression (the greppable part), `note:` lines for drift.
pub fn render_diff(diff: &ReportDiff) -> String {
    let mut out = String::new();
    if diff.is_clean() {
        out.push_str("lint-diff: no movement against the committed snapshot\n");
        return out;
    }
    for line in &diff.fatal {
        out.push_str(&format!("error: {line}\n"));
    }
    for line in &diff.notes {
        out.push_str(&format!("note: {line}\n"));
    }
    out.push_str(&format!(
        "lint-diff: {} fatal, {} note(s)\n",
        diff.fatal.len(),
        diff.notes.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, transitive_alloc: bool) -> FnEntry {
        FnEntry {
            function: name.to_string(),
            file: "crates/core/src/agent.rs".to_string(),
            line: 10,
            direct_alloc: false,
            direct_panic: false,
            direct_nondet: false,
            transitive_alloc,
            transitive_panic: false,
            transitive_nondet: false,
            implicit_panic_sites: None,
            implicit_panic_discharged: None,
        }
    }

    fn report(functions: Vec<FnEntry>) -> LintReport {
        LintReport {
            schema: SCHEMA_VERSION,
            rules: vec![RuleCount {
                rule: "alloc".to_string(),
                violations: 0,
            }],
            functions,
            allows: Vec::new(),
            lock_order: Some(LockOrderSection::default()),
            guards: Some(Vec::new()),
            depth_budgets: Some(Vec::new()),
            implicit_panic: Some(ImplicitPanicSection::default()),
            stats: ReportStats::default(),
        }
    }

    #[test]
    fn gained_property_is_fatal() {
        let prev = report(vec![entry("MeghAgent::decide", false)]);
        let cur = report(vec![entry("MeghAgent::decide", true)]);
        let diff = diff_reports(&prev, &cur);
        assert_eq!(diff.fatal.len(), 1, "{diff:?}");
        assert!(diff.fatal[0].contains("transitive_alloc"), "{diff:?}");
        assert!(render_diff(&diff).contains("error:"));
    }

    #[test]
    fn lost_property_and_churn_are_notes() {
        let prev = report(vec![entry("a", true), entry("gone", false)]);
        let cur = report(vec![entry("a", false), entry("fresh", false)]);
        let diff = diff_reports(&prev, &cur);
        assert!(diff.fatal.is_empty(), "{diff:?}");
        assert_eq!(diff.notes.len(), 3, "{diff:?}");
    }

    #[test]
    fn count_increase_is_fatal_decrease_is_note() {
        let mut prev = report(Vec::new());
        let mut cur = report(Vec::new());
        prev.rules[0].violations = 1;
        let diff = diff_reports(&prev, &cur);
        assert_eq!(diff.notes.len(), 1);
        prev.rules[0].violations = 0;
        cur.rules[0].violations = 2;
        let diff = diff_reports(&prev, &cur);
        assert_eq!(diff.fatal.len(), 1);
    }

    #[test]
    fn discharged_to_vouched_regression_is_fatal() {
        let mut prev = report(Vec::new());
        let mut cur = report(Vec::new());
        prev.implicit_panic = Some(ImplicitPanicSection {
            sites: 10,
            discharged: 8,
            vouched: 2,
        });
        cur.implicit_panic = Some(ImplicitPanicSection {
            sites: 10,
            discharged: 7,
            vouched: 3,
        });
        let diff = diff_reports(&prev, &cur);
        assert_eq!(diff.fatal.len(), 2, "{diff:?}");

        let mut p = entry("f", false);
        p.implicit_panic_sites = Some(4);
        p.implicit_panic_discharged = Some(4);
        let mut c = p.clone();
        c.implicit_panic_discharged = Some(3);
        let diff = diff_reports(&report(vec![p]), &report(vec![c]));
        assert_eq!(diff.fatal.len(), 2, "{diff:?}");
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report(vec![entry("x", true)]);
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: LintReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn identical_reports_diff_clean() {
        let r = report(vec![entry("x", false)]);
        let diff = diff_reports(&r, &r.clone());
        assert!(diff.is_clean());
        assert!(render_diff(&diff).contains("no movement"));
    }
}
