//! Interprocedural interval dataflow (v4): proves implicit panic sites
//! safe and flags order-nondeterministic float reductions.
//!
//! The pass runs a flow-sensitive abstract interpretation over each
//! function body's token stream ([`crate::items`] retains full-fidelity
//! tokens per file). The abstract state tracks, per local:
//!
//! * an integer interval ([`crate::intervals::Ival`]),
//! * symbolic *length facts* — `v == len(chain) + k` (`sym`) and
//!   `v <= len(chain) + k` (`ubs`) — seeded by `.len()` calls and
//!   refined by branch conditions and `assert!`/`debug_assert!`
//!   contracts (the *debug-checked contract* policy: a
//!   `debug_assert!` is trusted as an invariant; see DESIGN §17 for
//!   the one-sided-safety claim this implies),
//! * container lengths (`lens`) and length-equality classes
//!   (`len_eq`), invalidated conservatively on any mutation the
//!   analysis cannot classify.
//!
//! On top of the state the pass enumerates every *implicit panic
//! site* in scope files — `a[i]`, `&s[lo..hi]`, `x / y`, `x % y`, and
//! unsigned `-` — and discharges the ones the intervals prove safe.
//! The remainder surface as `implicit_panic` violations (vouchable via
//! `// lint: allow(implicit_panic)`), with the interval witness in the
//! message and the enclosing function as a related location.
//!
//! Call-summary propagation runs the interpretation to an
//! interprocedural fixpoint over the PR5 call graph: return intervals
//! for every workspace function, and parameter intervals (joined over
//! observed arguments) for private, non-address-taken functions whose
//! call sites all resolve. Three global rounds with widening after
//! round two bound the iteration; every transfer function falls back
//! to `TOP` when unsure, so imprecision can only *suppress* a
//! discharge, never manufacture one.
//!
//! The `float_determinism` rule reuses the same walk: a float
//! compound-assignment (`+=`, `-=`, `*=`, `/=`) inside a loop that
//! iterates a `HashMap`/`HashSet` or drains a channel
//! (`recv`/`try_recv`/`recv_timeout` anywhere in the loop) is an
//! order-nondeterministic reduction unless the site (or the loop
//! header) carries `// lint: ordered_merge` or an
//! `allow(float_determinism)` vouch.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::GraphOutcome;
use crate::intervals::{Ival, NEG_INF, POS_INF, TOP};
use crate::items::{ident, punct, FnItem, LocalTy, SpannedTok, Tok};
use crate::{FileScan, Related, Violation, HOT_PATH_FILES};

/// Files beyond [`HOT_PATH_FILES`] where `implicit_panic` applies (the
/// serve writer loop — a crash there loses checkpoint durability).
pub(crate) const IMPLICIT_PANIC_EXTRA_FILES: &[&str] = &["crates/serve/src/daemon.rs"];

/// Whether `implicit_panic` applies to `rel_path`.
pub(crate) fn implicit_panic_scope(rel_path: &str) -> bool {
    let rel = rel_path.replace('\\', "/");
    HOT_PATH_FILES.contains(&rel.as_str()) || IMPLICIT_PANIC_EXTRA_FILES.contains(&rel.as_str())
}

/// Interpretation step budget per function body; exceeding it emits an
/// undischargeable "budget" site rather than silently under-reporting.
const FUEL: usize = 400_000;

/// Per-hot-function implicit-panic statistics for the report.
pub(crate) struct FnPanicStats {
    /// Index of the owning file in the `FileScan` slice.
    pub file: usize,
    /// Index into that file's `parsed.fns`.
    pub item: usize,
    /// Implicit panic sites enumerated in the body.
    pub sites: usize,
    /// Sites the interval engine proved safe.
    pub discharged: usize,
}

/// Everything the dataflow pass hands back to the driver.
#[derive(Default)]
pub(crate) struct DataflowOutcome {
    /// `implicit_panic` + `float_determinism` violations.
    pub violations: Vec<Violation>,
    /// Per-function site counts, only for implicit-panic-scope files.
    pub fn_stats: Vec<FnPanicStats>,
    /// Total sites across `HOT_PATH_FILES`.
    pub hot_sites: usize,
    /// Discharged sites across `HOT_PATH_FILES`.
    pub hot_discharged: usize,
    /// Vouched (allow-silenced) sites across `HOT_PATH_FILES`.
    pub hot_vouched: usize,
}

// ---------------------------------------------------------------------------
// Abstract values and environments
// ---------------------------------------------------------------------------

/// Abstract value of one expression.
#[derive(Clone, Debug)]
struct Val {
    /// Integer interval (meaningful for integer-typed expressions).
    ival: Ival,
    /// Proven float-typed (suppresses div/rem/sub panic sites).
    float: bool,
    /// Proven unsigned-integer-typed (arms the `-` underflow site).
    uint: bool,
    /// Exact length fact: value `== len(chain) + off`.
    sym: Option<(String, i128)>,
    /// Upper-bound facts: value `<= len(chain) + off`.
    ubs: Vec<(String, i128)>,
    /// The expression is a single local variable (refinement target),
    /// possibly shifted: the expression equals `var + var_off`.
    var: Option<String>,
    /// Constant shift applied on top of `var` (`x + 1` keeps `var: x`,
    /// `var_off: 1`, so branch refinement can still reach `x`).
    var_off: i128,
    /// The expression is a pure field/variable chain (length key).
    chain: Option<String>,
    /// The expression denotes a slice-like positional container.
    is_slice: bool,
    /// Element type of the container, when proven.
    elem_float: bool,
    elem_uint: bool,
    /// Length of a freshly created container (literal / `vec!` /
    /// `to_vec`): interval plus optional `len(chain) + off` identity.
    slice_len: Option<(Ival, Option<(String, i128)>)>,
}

impl Val {
    fn top() -> Val {
        Val {
            ival: TOP,
            float: false,
            uint: false,
            sym: None,
            ubs: Vec::new(),
            var: None,
            var_off: 0,
            chain: None,
            is_slice: false,
            elem_float: false,
            elem_uint: false,
            slice_len: None,
        }
    }

    fn int(ival: Ival, uint: bool) -> Val {
        Val {
            ival,
            uint,
            ..Val::top()
        }
    }

    fn float() -> Val {
        Val {
            float: true,
            ..Val::top()
        }
    }

    /// Shift `sym`/`ubs`/interval by an exact constant (for `v + k`,
    /// `v - k`): `v <= len+o` implies `v+k <= len+o+k`.
    fn shifted(mut self, k: i128) -> Val {
        self.ival = self.ival.add(Ival::exact(k));
        if let Some((_, o)) = &mut self.sym {
            *o = o.saturating_add(k);
        }
        for (_, o) in &mut self.ubs {
            *o = o.saturating_add(k);
        }
        self.var_off = self.var_off.saturating_add(k);
        self.chain = None;
        self
    }
}

/// Abstract state of one local variable.
#[derive(Clone, Debug)]
struct VarInfo {
    ival: Ival,
    float: bool,
    uint: bool,
    sym: Option<(String, i128)>,
    ubs: Vec<(String, i128)>,
    is_slice: bool,
    elem_float: bool,
    elem_uint: bool,
}

impl VarInfo {
    fn unknown() -> VarInfo {
        VarInfo {
            ival: TOP,
            float: false,
            uint: false,
            sym: None,
            ubs: Vec::new(),
            is_slice: false,
            elem_float: false,
            elem_uint: false,
        }
    }

    /// Forget value facts but keep the declared type (a havocked
    /// `usize` is still `[0, +inf]` and still arms underflow sites).
    fn havoc(&self) -> VarInfo {
        VarInfo {
            ival: if self.uint { Ival::of(0, POS_INF) } else { TOP },
            float: self.float,
            uint: self.uint,
            sym: None,
            ubs: Vec::new(),
            is_slice: self.is_slice,
            elem_float: self.elem_float,
            elem_uint: self.elem_uint,
        }
    }

    fn join(&self, o: &VarInfo) -> VarInfo {
        VarInfo {
            ival: self.ival.join(o.ival),
            float: self.float && o.float,
            uint: self.uint && o.uint,
            sym: if self.sym == o.sym {
                self.sym.clone()
            } else {
                None
            },
            ubs: self
                .ubs
                .iter()
                .filter(|u| o.ubs.contains(u))
                .cloned()
                .collect(),
            is_slice: self.is_slice && o.is_slice,
            elem_float: self.elem_float && o.elem_float,
            elem_uint: self.elem_uint && o.elem_uint,
        }
    }

    fn to_val(&self, name: &str) -> Val {
        Val {
            ival: self.ival,
            float: self.float,
            uint: self.uint,
            sym: self.sym.clone(),
            ubs: self.ubs.clone(),
            var: Some(name.to_string()),
            var_off: 0,
            chain: Some(name.to_string()),
            is_slice: self.is_slice,
            elem_float: self.elem_float,
            elem_uint: self.elem_uint,
            slice_len: None,
        }
    }
}

/// The abstract environment at one program point.
#[derive(Clone, Debug, Default)]
struct Env {
    vars: BTreeMap<String, VarInfo>,
    /// Interval of `len(chain)` per tracked container chain.
    lens: BTreeMap<String, Ival>,
    /// `len(a) == len(b) + off` equalities (from `assert_eq!` on
    /// lengths and container aliasing/cloning).
    len_eq: Vec<(String, String, i128)>,
}

impl Env {
    /// Path join: keep only facts valid on both sides.
    fn join(&self, o: &Env) -> Env {
        let mut vars = BTreeMap::new();
        for (k, a) in &self.vars {
            if let Some(b) = o.vars.get(k) {
                vars.insert(k.clone(), a.join(b));
            }
        }
        let mut lens = BTreeMap::new();
        for (k, a) in &self.lens {
            if let Some(b) = o.lens.get(k) {
                lens.insert(k.clone(), a.join(*b));
            }
        }
        let len_eq = self
            .len_eq
            .iter()
            .filter(|e| o.len_eq.contains(e))
            .cloned()
            .collect();
        Env { vars, lens, len_eq }
    }

    /// A container (or anything under it) mutated unpredictably: drop
    /// every length/symbolic fact that mentions it.
    fn invalidate_prefix(&mut self, chain: &str) {
        let pref = format!("{chain}.");
        let hit = |k: &str| k == chain || k.starts_with(&pref);
        self.lens.retain(|k, _| !hit(k));
        self.len_eq.retain(|(a, b, _)| !hit(a) && !hit(b));
        for v in self.vars.values_mut() {
            v.ubs.retain(|(c, _)| !hit(c));
            if v.sym.as_ref().is_some_and(|(c, _)| hit(c)) {
                v.sym = None;
            }
        }
        if let Some(v) = self.vars.get_mut(chain) {
            *v = v.havoc();
        }
    }

    /// A container grew (`push`/`extend`): the length lower bound and
    /// all upper-bound facts stay valid; equalities break.
    fn grow_len(&mut self, chain: &str) {
        let e = self
            .lens
            .entry(chain.to_string())
            .or_insert(Ival::of(0, POS_INF));
        *e = Ival::of(e.lo.max(0), POS_INF);
        let c = chain.to_string();
        self.len_eq.retain(|(a, b, _)| *a != c && *b != c);
    }

    /// Reassigning or rebinding `name`: drop stale facts first.
    fn rebind(&mut self, name: &str, vi: VarInfo) {
        if self.vars.get(name).is_some_and(|v| v.is_slice) {
            self.invalidate_prefix(name);
        }
        if !vi.is_slice {
            self.lens.remove(name);
        }
        self.vars.insert(name.to_string(), vi);
    }

    /// Best known lower bound on `len(chain)`, relaxed through the
    /// length-equality classes (3 passes bound the chains we see).
    fn len_lo(&self, chain: &str) -> i128 {
        let mut lo: BTreeMap<&str, i128> = BTreeMap::new();
        let seed = |c: &str| self.lens.get(c).map(|v| v.lo.max(0)).unwrap_or(0);
        lo.insert(chain, seed(chain));
        for (a, b, _) in &self.len_eq {
            lo.entry(a).or_insert_with(|| seed(a));
            lo.entry(b).or_insert_with(|| seed(b));
        }
        for _ in 0..3 {
            for (a, b, off) in &self.len_eq {
                let (la, lb) = (lo[a.as_str()], lo[b.as_str()]);
                let na = la.max(lb.saturating_add(*off));
                let nb = lb.max(la.saturating_sub(*off));
                lo.insert(a, na);
                lo.insert(b, nb);
            }
        }
        lo.get(chain).copied().unwrap_or(0)
    }

    /// Exact delta `d` with `len(a) == len(b) + d`, if the equality
    /// classes connect the two chains.
    fn eq_delta(&self, a: &str, b: &str) -> Option<i128> {
        if a == b {
            return Some(0);
        }
        // BFS from `b`, computing len(x) == len(b) + d(x).
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        seen.insert(b);
        let mut frontier: Vec<(&str, i128)> = vec![(b, 0)];
        for _ in 0..8 {
            let mut next = Vec::new();
            for (cur, d) in &frontier {
                for (x, y, off) in &self.len_eq {
                    // len(x) == len(y) + off.
                    let (n, nd) = if y == cur {
                        (x.as_str(), d.saturating_add(*off))
                    } else if x == cur {
                        (y.as_str(), d.saturating_sub(*off))
                    } else {
                        continue;
                    };
                    if n == a {
                        return Some(nd);
                    }
                    if seen.insert(n) {
                        next.push((n, nd));
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Sites and float accumulations
// ---------------------------------------------------------------------------

/// One implicit panic site.
struct Site {
    /// 0-based line.
    line: usize,
    /// `index` / `slice` / `div` / `rem` / `sub` / `budget`.
    kind: &'static str,
    /// Rendered source fragment.
    text: String,
    /// The interval engine proved the site safe.
    discharged: bool,
    /// Discharge reason or witness of what is unknown.
    why: String,
}

/// One candidate order-nondeterministic float accumulation.
struct FloatAccum {
    /// 0-based line of the compound assignment.
    line: usize,
    /// Rendered accumulation target.
    target: String,
    /// Why the enclosing loop is order-nondeterministic.
    cause: &'static str,
    /// 0-based line of the offending loop header.
    header_line: usize,
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// Index of the matching close delimiter for the open at `open`
/// (same-kind counting); saturates at the end of the stream.
fn close_delim(toks: &[SpannedTok], open: usize) -> usize {
    let (o, c) = match punct(toks, open) {
        Some('(') => ('(', ')'),
        Some('[') => ('[', ']'),
        Some('{') => ('{', '}'),
        _ => return open,
    };
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match punct(toks, i) {
            Some(x) if x == o => depth += 1,
            Some(x) if x == c => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Renders a token span back to a compact source-ish fragment for
/// witness messages (capped; whitespace is approximate).
fn render_toks(toks: &[SpannedTok], a: usize, b: usize) -> String {
    let mut out = String::new();
    for t in toks.iter().take(b.min(toks.len())).skip(a) {
        let piece = match &t.tok {
            Tok::Ident(s) => s.clone(),
            Tok::Num(s) => s.clone(),
            Tok::Punct(c) => c.to_string(),
        };
        let no_space_before = matches!(piece.as_str(), ")" | "]" | "," | ";" | "." | "[" | "(")
            || out.ends_with(['.', '(', '[', '&', ':'])
            || out.is_empty()
            || piece == ":";
        if !no_space_before {
            out.push(' ');
        }
        out.push_str(&piece);
        if out.len() > 60 {
            out.push('…');
            break;
        }
    }
    out
}

/// Parsed numeric literal.
enum NumLit {
    Int(i128),
    Float,
    Unknown,
}

/// Classifies and evaluates a numeric literal's text.
fn parse_num(text: &str) -> NumLit {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    if t.ends_with("f32") || t.ends_with("f64") {
        return NumLit::Float;
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        return i128::from_str_radix(&digits, 16)
            .map(NumLit::Int)
            .unwrap_or(NumLit::Unknown);
    }
    if let Some(oct) = t.strip_prefix("0o") {
        let digits: String = oct
            .chars()
            .take_while(|c| ('0'..='7').contains(c))
            .collect();
        return i128::from_str_radix(&digits, 8)
            .map(NumLit::Int)
            .unwrap_or(NumLit::Unknown);
    }
    if let Some(bin) = t.strip_prefix("0b") {
        let digits: String = bin.chars().take_while(|c| *c == '0' || *c == '1').collect();
        return i128::from_str_radix(&digits, 2)
            .map(NumLit::Int)
            .unwrap_or(NumLit::Unknown);
    }
    if t.contains('.') || t.contains('e') || t.contains('E') {
        return NumLit::Float;
    }
    let digits: String = t.chars().take_while(|c| c.is_ascii_digit()).collect();
    let suffix = &t[digits.len()..];
    match digits.parse::<i128>() {
        Ok(v) if suffix.is_empty() || suffix.starts_with('u') || suffix.starts_with('i') => {
            NumLit::Int(v)
        }
        _ => NumLit::Unknown,
    }
}

fn is_keyword_like(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "else"
            | "enum"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "self"
            | "Self"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "dyn"
            | "async"
            | "await"
            | "_"
    )
}

// ---------------------------------------------------------------------------
// Declared types
// ---------------------------------------------------------------------------

/// Best-effort classification of a declared type.
#[derive(Clone, Debug, Default)]
struct TyInfo {
    float: bool,
    uint: bool,
    slice: bool,
    elem_float: bool,
    elem_uint: bool,
    /// Fixed array length (`[T; N]` with a literal / known-const `N`).
    fixed: Option<i128>,
    /// Base path segment (struct name for chain walking).
    base: Option<String>,
}

fn prim_flags(s: &str) -> (bool, bool) {
    // (float, uint)
    match s {
        "f32" | "f64" => (true, false),
        "usize" | "u8" | "u16" | "u32" | "u64" | "u128" => (false, true),
        _ => (false, false),
    }
}

/// Parses a type starting at `i` (bounded by `end`); returns the
/// classification and the index just past what was understood.
fn parse_ty(
    toks: &[SpannedTok],
    mut i: usize,
    end: usize,
    consts: &BTreeMap<String, i128>,
) -> (TyInfo, usize) {
    let mut ty = TyInfo::default();
    for _ in 0..4 {
        while i < end {
            match toks.get(i).map(|t| &t.tok) {
                Some(Tok::Punct('&')) => i += 1,
                Some(Tok::Ident(s)) if s == "mut" || s == "dyn" => i += 1,
                _ => break,
            }
        }
        if punct(toks, i) == Some('[') {
            let cb = close_delim(toks, i);
            let (inner, after_elem) = parse_ty(toks, i + 1, cb, consts);
            ty.slice = true;
            ty.elem_float = inner.float;
            ty.elem_uint = inner.uint;
            // `[T; N]` fixed length.
            if punct(toks, after_elem) == Some(';') {
                ty.fixed = match toks.get(after_elem + 1).map(|t| &t.tok) {
                    Some(Tok::Num(text)) => match parse_num(text) {
                        NumLit::Int(v) => Some(v),
                        _ => None,
                    },
                    Some(Tok::Ident(name)) => consts.get(name.as_str()).copied(),
                    _ => None,
                };
            }
            return (ty, cb + 1);
        }
        match toks.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) if matches!(s.as_str(), "Vec" | "Box" | "Arc" | "Rc") => {
                if punct(toks, i + 1) == Some('<') {
                    if s == "Vec" {
                        // `Vec<elem>`: classify the element, stay a slice.
                        let (inner, _) = parse_ty(toks, i + 2, end, consts);
                        ty.slice = true;
                        ty.elem_float = inner.float || ty.elem_float;
                        ty.elem_uint = inner.uint || ty.elem_uint;
                        ty.base = Some("Vec".to_string());
                        let next = crate::items::skip_generics_pub(toks, i + 1);
                        return (ty, next);
                    }
                    // Wrapper: descend.
                    i += 2;
                    continue;
                }
                ty.base = Some(s.clone());
                return (ty, i + 1);
            }
            Some(Tok::Ident(s)) => {
                // Walk `a::b::C` to the last segment.
                let mut base = s.clone();
                let mut j = i + 1;
                while punct(toks, j) == Some(':') && punct(toks, j + 1) == Some(':') {
                    if let Some(seg) = ident(toks, j + 2) {
                        base = seg.to_string();
                        j += 3;
                    } else {
                        break;
                    }
                }
                let (f, u) = prim_flags(&base);
                ty.float = f;
                ty.uint = u;
                ty.base = Some(base);
                if punct(toks, j) == Some('<') {
                    j = crate::items::skip_generics_pub(toks, j);
                }
                return (ty, j);
            }
            _ => return (ty, i),
        }
    }
    (ty, i)
}

impl TyInfo {
    fn to_var(&self) -> VarInfo {
        VarInfo {
            ival: if self.uint { Ival::of(0, POS_INF) } else { TOP },
            float: self.float,
            uint: self.uint,
            sym: None,
            ubs: Vec::new(),
            is_slice: self.slice,
            elem_float: self.elem_float,
            elem_uint: self.elem_uint,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-node signature info & summaries
// ---------------------------------------------------------------------------

/// Signature-derived facts about one graph node.
pub(crate) struct NodeInfo {
    /// Positional named parameters (skipping the receiver).
    params: Vec<(String, TyInfo)>,
    /// Declared return type classification.
    ret: TyInfo,
    /// The receiver is `&mut self` (calls invalidate receiver facts).
    mut_self: bool,
    /// `pub`/`pub(crate)` — callable from unscanned code (tests,
    /// benches), so observed-argument param summaries are off.
    is_pub: bool,
    /// Every parameter parsed cleanly as `name: Ty`.
    clean: bool,
}

/// Interprocedural summary of one function.
#[derive(Clone)]
pub(crate) struct FnSummary {
    /// Return-value interval (join over all return paths).
    ret: Ival,
    /// Declared-float return.
    ret_float: bool,
}

/// Parses the signature token range `[sig_tok, body start)`.
fn parse_sig(toks: &[SpannedTok], item: &FnItem, consts: &BTreeMap<String, i128>) -> NodeInfo {
    let mut info = NodeInfo {
        params: Vec::new(),
        ret: TyInfo::default(),
        mut_self: false,
        is_pub: false,
        clean: true,
    };
    let sig_end = item.body.map(|(b, _)| b).unwrap_or(toks.len());
    // `pub` within a few tokens before `fn` (stopping at item breaks).
    let mut k = item.sig_tok;
    for _ in 0..6 {
        if k == 0 {
            break;
        }
        k -= 1;
        match toks.get(k).map(|t| &t.tok) {
            Some(Tok::Ident(s)) if s == "pub" => {
                info.is_pub = true;
                break;
            }
            Some(Tok::Punct(';' | '{' | '}')) => break,
            _ => {}
        }
    }
    // Find the parameter list.
    let mut i = item.sig_tok + 2; // past `fn name`
    if punct(toks, i) == Some('<') {
        i = crate::items::skip_generics_pub(toks, i);
    }
    if punct(toks, i) != Some('(') {
        info.clean = false;
        return info;
    }
    let close = close_delim(toks, i);
    let mut j = i + 1;
    while j < close {
        // Receiver?
        let mut r = j;
        let mut saw_mut = false;
        while punct(toks, r) == Some('&') || ident(toks, r) == Some("mut") {
            saw_mut |= ident(toks, r) == Some("mut");
            r += 1;
        }
        if ident(toks, r) == Some("self") {
            info.mut_self = saw_mut;
            j = skip_to_param_end(toks, r + 1, close);
            continue;
        }
        // `mut name: Ty`.
        let mut p = j;
        if ident(toks, p) == Some("mut") {
            p += 1;
        }
        let (name, has_colon) = match (ident(toks, p), punct(toks, p + 1)) {
            (Some(n), Some(':')) if !is_keyword_like(n) => (n.to_string(), true),
            _ => (String::new(), false),
        };
        if !has_colon {
            // Pattern parameter (`(a, b): (usize, usize)`, `_: T`) —
            // positional argument mapping is off for this function.
            info.clean = false;
            j = skip_to_param_end(toks, p, close);
            continue;
        }
        let (ty, after) = parse_ty(toks, p + 2, close, consts);
        info.params.push((name, ty));
        j = skip_to_param_end(toks, after.max(p + 2), close);
    }
    // Return type.
    let mut r = close + 1;
    if punct(toks, r) == Some('-') && punct(toks, r + 1) == Some('>') {
        let (ty, _) = parse_ty(toks, r + 2, sig_end, consts);
        info.ret = ty;
    } else {
        let _ = &mut r;
    }
    info
}

/// Advances past the current parameter to just after its `,` (or to
/// the closing paren), balancing nested delimiters and generics.
fn skip_to_param_end(toks: &[SpannedTok], mut i: usize, close: usize) -> usize {
    while i < close {
        match punct(toks, i) {
            Some('(') | Some('[') | Some('{') => i = close_delim(toks, i) + 1,
            Some('<') => i = crate::items::skip_generics_pub(toks, i),
            Some(',') => return i + 1,
            _ => i += 1,
        }
    }
    close
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

/// Read-only context shared by every function interpreted in a round.
struct Cx<'a> {
    toks: &'a [SpannedTok],
    gated: &'a [bool],
    item: &'a FnItem,
    /// Corpus-wide integer consts (`const LANES: usize = 8;`).
    consts: &'a BTreeMap<String, i128>,
    /// Corpus-wide struct field base types / container element types.
    fields: &'a BTreeMap<String, BTreeMap<String, String>>,
    elems: &'a BTreeMap<String, BTreeMap<String, String>>,
    /// Interprocedural summaries from the previous round.
    summaries: &'a BTreeMap<usize, FnSummary>,
    /// Call-site token index → resolved workspace target nodes.
    targets: &'a BTreeMap<usize, Vec<usize>>,
    /// Per-node `&mut self` flag (receiver-fact invalidation).
    node_mut_self: &'a [bool],
    /// Final round: build sites/witness strings.
    collect: bool,
}

/// Resolved typing of a multi-segment chain (`self.a.b`).
#[derive(Default)]
struct ChainTy {
    float: bool,
    uint: bool,
    slice: bool,
    elem_float: bool,
    elem_uint: bool,
    /// Terminal base type is HashMap/HashSet (nondet iteration order).
    hash: bool,
}

/// Loop nesting context for `float_determinism`.
struct LoopCtx {
    nondet: bool,
    cause: &'static str,
    header_line: usize,
}

/// Outcome of one block / statement.
struct BlockOut {
    term: bool,
    val: Val,
}

struct Interp<'a> {
    cx: &'a Cx<'a>,
    sites: Vec<Site>,
    accums: Vec<FloatAccum>,
    ret: Ival,
    ret_seen: bool,
    loops: Vec<LoopCtx>,
    /// Joined argument intervals per resolved callee node.
    args_out: BTreeMap<usize, Vec<Ival>>,
    steps: usize,
    exhausted: bool,
    in_assert: bool,
    /// Element value of the window/chunk iterator a just-parsed
    /// `.windows(k)` / `.chunks_exact(k)` adapter yields; consumed by
    /// the next adapter's closure so `|w| w[0] > w[1]` type-checks.
    pending_elem: Option<Val>,
    /// `pending_elem` promoted for one argument list, tagged with the
    /// token index where a consuming closure must begin.
    closure_elem: Option<(usize, Val)>,
}

/// Methods that cannot change a container's length (sound to keep
/// length facts across). Unknown names conservatively invalidate.
const LEN_PURE: &[&str] = &[
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "get",
    "get_mut",
    "first",
    "last",
    "first_mut",
    "last_mut",
    "contains",
    "binary_search",
    "binary_search_by",
    "partition_point",
    "chunks",
    "chunks_exact",
    "chunks_mut",
    "chunks_exact_mut",
    "windows",
    "split_at",
    "split_at_mut",
    "as_slice",
    "as_mut_slice",
    "as_ref",
    "as_mut",
    "as_ptr",
    "as_mut_ptr",
    "sort",
    "sort_by",
    "sort_unstable",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "reverse",
    "rotate_left",
    "rotate_right",
    "fill",
    "copy_from_slice",
    "clone_from_slice",
    "swap",
    "to_vec",
    "to_owned",
    "clone",
    "reserve",
    "reserve_exact",
    "shrink_to_fit",
    "capacity",
    "keys",
    "values",
    "entry",
    "rev",
    "map",
    "filter",
    "fold",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "enumerate",
    "zip",
    "copied",
    "cloned",
    "take",
    "skip",
    "step_by",
    "flat_map",
    "flatten",
    "collect",
    "count",
    "position",
    "find",
    "any",
    "all",
    "by_ref",
    "abs",
    "sqrt",
    "powi",
    "powf",
    "exp",
    "ln",
    "log2",
    "log10",
    "floor",
    "ceil",
    "round",
    "trunc",
    "recip",
    "mul_add",
    "hypot",
    "to_bits",
    "from_bits",
    "is_finite",
    "is_nan",
    "signum",
    "clamp",
    "saturating_sub",
    "saturating_add",
    "saturating_mul",
    "checked_sub",
    "checked_add",
    "checked_mul",
    "checked_div",
    "wrapping_sub",
    "wrapping_add",
    "wrapping_mul",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map_or",
    "ok_or",
    "ok",
    "err",
    "expect",
    "unwrap",
    "is_some",
    "is_none",
    "as_deref",
    "recv",
    "try_recv",
    "recv_timeout",
    "send",
    "lock",
    "read",
    "write",
    "get_or_insert_with",
    "max_element",
    "min_element",
    "to_string",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
];

/// Methods that grow a container (lower length bound survives).
const LEN_GROW: &[&str] = &[
    "push",
    "extend",
    "extend_from_slice",
    "push_back",
    "push_front",
    "insert",
];

/// Chain-preserving view methods (the result still ranges over the
/// same positional container).
const VIEW_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "copied",
    "cloned",
    "as_slice",
    "as_mut_slice",
    "as_ref",
    "by_ref",
    "rev",
];

const FLOAT_METHODS: &[&str] = &[
    "sqrt",
    "powf",
    "exp",
    "ln",
    "log2",
    "log10",
    "floor",
    "ceil",
    "round",
    "trunc",
    "recip",
    "mul_add",
    "hypot",
    "abs_sub",
    "to_degrees",
    "to_radians",
    "as_secs_f64",
    "as_secs_f32",
];

const RECV_METHODS: &[&str] = &["recv", "try_recv", "recv_timeout"];

fn has_recv(toks: &[SpannedTok], a: usize, b: usize) -> bool {
    toks.iter()
        .take(b.min(toks.len()))
        .skip(a)
        .any(|t| matches!(&t.tok, Tok::Ident(s) if RECV_METHODS.contains(&s.as_str())))
}

#[derive(Clone, Copy, PartialEq)]
enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }
}

/// One refinable condition atom. The `Cmp` payload dominates the size,
/// but atoms are short-lived stack values — boxing would only add churn.
#[allow(clippy::large_enum_variant)]
enum Atom {
    Cmp { lhs: Val, op: CmpOp, rhs: Val },
    Empty { chain: String, neg: bool },
    Opaque,
}

impl<'a> Interp<'a> {
    fn new(cx: &'a Cx<'a>) -> Interp<'a> {
        Interp {
            cx,
            sites: Vec::new(),
            accums: Vec::new(),
            ret: crate::intervals::BOTTOM,
            ret_seen: false,
            loops: Vec::new(),
            args_out: BTreeMap::new(),
            steps: 0,
            exhausted: false,
            in_assert: false,
            pending_elem: None,
            closure_elem: None,
        }
    }

    fn spend(&mut self) -> bool {
        self.steps += 1;
        if self.steps > FUEL {
            self.exhausted = true;
        }
        !self.exhausted
    }

    fn site(
        &mut self,
        tok: usize,
        kind: &'static str,
        text: String,
        discharged: bool,
        why: String,
    ) {
        if !self.cx.collect || self.in_assert {
            return;
        }
        if self.cx.gated.get(tok).copied().unwrap_or(false) {
            return;
        }
        let line = self.cx.toks.get(tok).map(|t| t.line).unwrap_or(0);
        self.sites.push(Site {
            line,
            kind,
            text,
            discharged,
            why,
        });
    }

    /// Resolves the declared type of a chain head (`xs` → `Vec`).
    fn head_base(&self, name: &str) -> Option<String> {
        if let Some(Some(base)) = self.cx.item.params.get(name) {
            return Some(base.clone());
        }
        match self.cx.item.locals.get(name) {
            Some(LocalTy::Known(base)) => Some(base.clone()),
            Some(LocalTy::SelfChain(chain)) => {
                let mut ty = self.cx.item.self_type.clone()?;
                for seg in chain {
                    ty = self.cx.fields.get(&ty)?.get(seg)?.clone();
                }
                Some(ty)
            }
            _ => None,
        }
    }

    /// Typing for a multi-segment chain via the struct field tables.
    fn walk_chain(&self, env: &Env, segs: &[String]) -> ChainTy {
        let mut out = ChainTy::default();
        if segs.is_empty() {
            return out;
        }
        let mut ty: Option<String> = if segs[0] == "self" {
            self.cx.item.self_type.clone()
        } else if segs.len() == 1 {
            // Single locals are handled through `env`; still classify
            // hash-ness for loop analysis.
            let base = self.head_base(&segs[0]);
            if let Some(b) = &base {
                out.hash = b == "HashMap" || b == "HashSet";
            }
            if let Some(vi) = env.vars.get(&segs[0]) {
                out.slice = vi.is_slice;
                out.elem_float = vi.elem_float;
                out.elem_uint = vi.elem_uint;
                out.float = vi.float;
                out.uint = vi.uint;
            }
            return out;
        } else {
            self.head_base(&segs[0])
        };
        for (n, seg) in segs.iter().enumerate().skip(1) {
            let Some(cur) = ty.clone() else { return out };
            let last = n + 1 == segs.len();
            let base = self.cx.fields.get(&cur).and_then(|m| m.get(seg)).cloned();
            if last {
                let elem = self.cx.elems.get(&cur).and_then(|m| m.get(seg)).cloned();
                if let Some(e) = elem {
                    let (f, u) = prim_flags(&e);
                    out.slice = true;
                    out.elem_float = f;
                    out.elem_uint = u;
                } else if let Some(b) = &base {
                    let (f, u) = prim_flags(b);
                    out.float = f;
                    out.uint = u;
                    out.slice = b == "Vec" || b == "VecDeque";
                    out.hash = b == "HashMap" || b == "HashSet";
                }
                return out;
            }
            ty = base;
        }
        out
    }

    /// Value of a pure multi-segment chain expression.
    fn chain_val(&self, env: &Env, segs: &[String]) -> Val {
        let key = segs.join(".");
        if segs.len() == 1 {
            if let Some(vi) = env.vars.get(&segs[0]) {
                return vi.to_val(&segs[0]);
            }
            if let Some(v) = self.cx.consts.get(&segs[0]) {
                return Val::int(Ival::exact(*v), *v >= 0);
            }
            let mut v = Val::top();
            v.chain = Some(key);
            return v;
        }
        let ct = self.walk_chain(env, segs);
        let mut v = Val::top();
        v.chain = Some(key);
        v.float = ct.float;
        v.uint = ct.uint;
        if ct.uint {
            v.ival = Ival::of(0, POS_INF);
        }
        v.is_slice = ct.slice;
        v.elem_float = ct.elem_float;
        v.elem_uint = ct.elem_uint;
        v
    }

    /// Effect of calling method `m` on the container chain `chain`.
    fn apply_method_effect(&mut self, env: &mut Env, chain: Option<&str>, m: &str, mtok: usize) {
        let Some(chain) = chain else { return };
        if let Some(targets) = self.cx.targets.get(&mtok) {
            if !targets.is_empty() {
                let mutates = targets
                    .iter()
                    .any(|t| self.cx.node_mut_self.get(*t).copied().unwrap_or(true));
                if mutates {
                    env.invalidate_prefix(chain);
                }
                return;
            }
        }
        if LEN_GROW.contains(&m) {
            env.grow_len(chain);
        } else if !LEN_PURE.contains(&m) {
            env.invalidate_prefix(chain);
        }
    }

    // -- discharge ---------------------------------------------------------

    /// `v <= len(base) + slack`? (slack −1 ⇒ `v < len`, 0 ⇒ `v <= len`.)
    fn le_len(&self, env: &Env, v: &Val, base: &str, slack: i128) -> Option<String> {
        // Numeric: hi against the best lower bound on len(base).
        let ll = env.len_lo(base);
        if v.ival.hi < POS_INF && v.ival.hi <= ll.saturating_add(slack) {
            return Some(format!("value ≤ {} ≤ len({base}){:+}", v.ival.hi, slack));
        }
        // Symbolic: v == len(c)+o or v <= len(c)+o with len(c) == len(base)+d.
        let mut facts: Vec<(String, i128)> = v.ubs.clone();
        if let Some(s) = &v.sym {
            facts.push(s.clone());
        }
        for (c, o) in &facts {
            if let Some(d) = env.eq_delta(c, base) {
                if d.saturating_add(*o) <= slack {
                    return Some(format!("value ≤ len({c}){o:+} ≤ len({base}){:+}", d + o));
                }
            }
        }
        None
    }

    /// Can `base[idx]` be proven in-bounds?
    fn fits_index(
        &self,
        env: &Env,
        base: Option<&str>,
        is_slice: bool,
        idx: &Val,
    ) -> (bool, String) {
        let Some(base) = base else {
            return (false, "container expression untracked".to_string());
        };
        if !is_slice {
            return (
                false,
                "not a proven positional container (map/opaque indexing)".to_string(),
            );
        }
        // A slice's `Index` impl takes `usize`, so the index cannot be
        // negative *at the site*; an apparently negative range is an
        // upstream unsigned subtraction, which the `sub` rule reports
        // where it happens. Clamp and judge the upper bound only.
        let mut idx = idx.clone();
        idx.ival = idx.ival.meet(Ival::of(0, POS_INF));
        if let Some(w) = self.le_len(env, &idx, base, -1) {
            return (true, w);
        }
        (
            false,
            format!(
                "index ∈ {}, len({base}) ≥ {}",
                idx.ival.render(),
                env.len_lo(base)
            ),
        )
    }

    /// Can `&base[lo..hi]` be proven in-bounds (`hi` `None` = open end)?
    fn fits_slice(
        &self,
        env: &Env,
        base: Option<&str>,
        is_slice: bool,
        lo: &Val,
        hi: Option<&Val>,
        inclusive: bool,
    ) -> (bool, String) {
        let Some(base) = base else {
            return (false, "container expression untracked".to_string());
        };
        if !is_slice {
            return (false, "not a proven positional container".to_string());
        }
        // Slice range bounds are `usize` (see `fits_index` on why an
        // apparently negative interval is the sub rule's problem, not
        // this site's): clamp both bounds before judging them.
        let mut lo = lo.clone();
        lo.ival = lo.ival.meet(Ival::of(0, POS_INF));
        let lo = &lo;
        let hi = hi.map(|h| {
            let mut h = h.clone();
            h.ival = h.ival.meet(Ival::of(0, POS_INF));
            h
        });
        let hi = hi.as_ref();
        let hi_ok = match hi {
            None => Some("open upper bound".to_string()),
            Some(h) => self.le_len(env, h, base, if inclusive { -1 } else { 0 }),
        };
        let Some(hi_why) = hi_ok else {
            let h = hi.map(|h| h.ival.render()).unwrap_or_default();
            return (
                false,
                format!("upper bound ∈ {h}, len({base}) ≥ {}", env.len_lo(base)),
            );
        };
        // lo <= hi (or lo <= len for the open form).
        let lo_ok = match hi {
            None => self.le_len(env, lo, base, 0).is_some() || lo.ival.is_exactly(0),
            Some(h) => {
                lo.ival.is_exactly(0)
                    || (h.ival.lo > crate::intervals::NEG_INF && lo.ival.hi <= h.ival.lo)
                    || match (&lo.sym, &h.sym) {
                        (Some((cl, ol)), Some((ch, oh))) => cl == ch && ol <= oh,
                        _ => false,
                    }
            }
        };
        if lo_ok {
            (true, hi_why)
        } else {
            (false, format!("start ∈ {} not ≤ end", lo.ival.render()))
        }
    }

    // -- expression parsing ------------------------------------------------

    /// Pratt parse with interval evaluation. `min_bp` gates which
    /// binary operators are consumed; stops at `..`, `=`, `=>`, and
    /// any closing delimiter. Never moves past `end`.
    fn parse_expr(&mut self, env: &mut Env, i: usize, min_bp: u8, end: usize) -> (Val, usize) {
        if !self.spend() || i >= end {
            return (Val::top(), i.min(end).max(i));
        }
        let (mut lhs, mut i) = self.parse_primary(env, i, end);
        loop {
            if i >= end || !self.spend() {
                break;
            }
            // `as` cast.
            if ident(self.cx.toks, i) == Some("as") {
                if 11 < min_bp {
                    break;
                }
                let (ty, next) = parse_ty(self.cx.toks, i + 1, end, self.cx.consts);
                lhs = self.apply_cast(lhs, &ty);
                i = next.max(i + 2);
                continue;
            }
            let Some((op, bp, ntok)) = self.peek_binop(i) else {
                break;
            };
            if bp < min_bp {
                break;
            }
            let optok = i;
            i += ntok;
            let (rhs, next) = self.parse_expr(env, i, bp + 1, end);
            i = next;
            lhs = self.combine(env, lhs, op, rhs, optok);
        }
        (lhs, i)
    }

    /// Binary operator lookahead: `(op char tag, binding power, tokens)`.
    fn peek_binop(&self, i: usize) -> Option<(char, u8, usize)> {
        let t = self.cx.toks;
        let c = punct(t, i)?;
        let c2 = punct(t, i + 1);
        match (c, c2) {
            ('&', Some('&')) => Some(('A', 3, 2)),
            ('|', Some('|')) => Some(('O', 3, 2)),
            ('=', Some('=')) => Some(('E', 4, 2)),
            ('!', Some('=')) => Some(('N', 4, 2)),
            ('<', Some('=')) => Some(('l', 4, 2)),
            ('>', Some('=')) => Some(('g', 4, 2)),
            ('<', Some('<')) if punct(t, i + 2) != Some('=') => Some(('s', 8, 2)),
            ('>', Some('>')) if punct(t, i + 2) != Some('=') => Some(('s', 8, 2)),
            ('<', _) => Some(('<', 4, 1)),
            ('>', _) => Some(('>', 4, 1)),
            ('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^', Some('=')) => None, // compound assign
            ('+', _) => Some(('+', 9, 1)),
            ('-', _) => Some(('-', 9, 1)),
            ('*', _) => Some(('*', 10, 1)),
            ('/', _) => Some(('/', 10, 1)),
            ('%', _) => Some(('%', 10, 1)),
            ('&', _) => Some(('b', 7, 1)),
            ('|', _) => Some(('b', 5, 1)),
            ('^', _) => Some(('b', 6, 1)),
            _ => None,
        }
    }

    fn apply_cast(&self, mut v: Val, ty: &TyInfo) -> Val {
        let keep_facts = matches!(
            ty.base.as_deref(),
            Some("usize" | "u64" | "i64" | "u128" | "i128")
        );
        v.var = None;
        v.chain = None;
        v.is_slice = false;
        if ty.float {
            v.float = true;
            v.uint = false;
            v.ival = TOP;
            v.sym = None;
            v.ubs.clear();
            return v;
        }
        if v.float {
            // float → int saturating casts.
            v.float = false;
            v.uint = ty.uint;
            v.ival = if ty.uint { Ival::of(0, POS_INF) } else { TOP };
            v.sym = None;
            v.ubs.clear();
            return v;
        }
        v.uint = ty.uint;
        let cap = match ty.base.as_deref() {
            Some("u8") => Some(255),
            Some("u16") => Some(65_535),
            Some("u32") => Some(4_294_967_295),
            _ => None,
        };
        if let Some(cap) = cap {
            v.ival = if v.ival.lo >= 0 && v.ival.hi <= cap {
                v.ival
            } else {
                Ival::of(0, cap)
            };
            v.sym = None;
            v.ubs.clear();
        } else if ty.uint {
            v.ival = if v.ival.lo >= 0 {
                v.ival
            } else {
                Ival::of(0, POS_INF)
            };
            if v.ival.lo < 0 || !keep_facts {
                v.sym = None;
                v.ubs.clear();
            }
        } else if !keep_facts {
            v.sym = None;
            v.ubs.clear();
        }
        v
    }

    /// Combines a binary operation, registering div/rem/sub sites.
    fn combine(&mut self, env: &Env, lhs: Val, op: char, rhs: Val, optok: usize) -> Val {
        let float = lhs.float || rhs.float;
        match op {
            '+' => {
                if float {
                    return Val::float();
                }
                if rhs.ival.lo == rhs.ival.hi && rhs.ival.lo > crate::intervals::NEG_INF {
                    return lhs.shifted(rhs.ival.lo);
                }
                if lhs.ival.lo == lhs.ival.hi && lhs.ival.lo > crate::intervals::NEG_INF {
                    return rhs.shifted(lhs.ival.lo);
                }
                let mut v = Val::int(lhs.ival.add(rhs.ival), lhs.uint && rhs.uint);
                if v.uint {
                    v.ival = v.ival.meet(Ival::of(0, POS_INF));
                }
                v
            }
            '-' => {
                if float {
                    return Val::float();
                }
                // Underflow site: unsigned lhs, provably-non-negative rhs.
                if lhs.uint && rhs.ival.lo >= 0 {
                    let (ok, why) = self.sub_safe(env, &lhs, &rhs);
                    let text = self.render_around(optok);
                    self.site(optok, "sub", text, ok, why);
                }
                let mut out =
                    if rhs.ival.lo == rhs.ival.hi && rhs.ival.lo > crate::intervals::NEG_INF {
                        lhs.clone().shifted(-rhs.ival.lo)
                    } else {
                        Val::int(lhs.ival.sub(rhs.ival), false)
                    };
                out.uint = lhs.uint;
                if out.uint {
                    // Conditional on no panic, the value is non-negative.
                    out.ival = out.ival.meet(Ival::of(0, POS_INF));
                }
                out
            }
            '*' => {
                if float {
                    return Val::float();
                }
                let mut v = Val::int(lhs.ival.mul(rhs.ival), lhs.uint && rhs.uint);
                if v.uint {
                    v.ival = v.ival.meet(Ival::of(0, POS_INF));
                }
                v
            }
            '/' | '%' => {
                if float {
                    return Val::float();
                }
                let kind = if op == '/' { "div" } else { "rem" };
                let ok = rhs.ival.lo >= 1 || rhs.ival.hi <= -1;
                let why = if ok {
                    format!("divisor ∈ {} excludes 0", rhs.ival.render())
                } else {
                    format!("divisor ∈ {} may be 0", rhs.ival.render())
                };
                let text = self.render_around(optok);
                self.site(optok, kind, text, ok, why);
                let iv = if op == '/' {
                    lhs.ival.div(rhs.ival)
                } else {
                    lhs.ival.rem(rhs.ival)
                };
                Val::int(iv, lhs.uint && rhs.uint)
            }
            's' | 'b' => Val::int(
                if lhs.uint && rhs.uint {
                    Ival::of(0, POS_INF)
                } else {
                    TOP
                },
                lhs.uint && rhs.uint,
            ),
            // Comparisons / logic: plain booleans.
            _ => Val::top(),
        }
    }

    /// Discharge test for `lhs - rhs` on unsigned operands.
    fn sub_safe(&self, env: &Env, lhs: &Val, rhs: &Val) -> (bool, String) {
        if rhs.ival.hi < POS_INF && lhs.ival.lo >= rhs.ival.hi {
            return (
                true,
                format!("lhs ≥ {} ≥ rhs ≤ {}", lhs.ival.lo, rhs.ival.hi),
            );
        }
        if let (Some((cl, ol)), Some((cr, or))) = (&lhs.sym, &rhs.sym) {
            if let Some(d) = env.eq_delta(cl, cr) {
                // lhs = len(cl)+ol = len(cr)+d+ol ≥ len(cr)+or = rhs.
                if d.saturating_add(*ol) >= *or {
                    return (
                        true,
                        format!("lhs = len({cl}){ol:+} ≥ rhs = len({cr}){or:+}"),
                    );
                }
            }
        }
        if let Some((cl, ol)) = &lhs.sym {
            // lhs = len(cl)+ol; rhs ≤ len(cl)+o with o ≤ ol.
            for (cr, or) in &rhs.ubs {
                if let Some(d) = env.eq_delta(cr, cl) {
                    if or.saturating_add(d) <= *ol {
                        return (true, format!("rhs ≤ len({cr}){or:+} ≤ lhs"));
                    }
                }
            }
        }
        (
            false,
            format!(
                "lhs ∈ {}, rhs ∈ {} — may underflow",
                lhs.ival.render(),
                rhs.ival.render()
            ),
        )
    }

    /// Short rendered fragment around a site token for witnesses.
    fn render_around(&self, tok: usize) -> String {
        let a = tok.saturating_sub(5);
        let b = (tok + 6).min(self.cx.toks.len());
        render_toks(self.cx.toks, a, b)
    }

    /// Primary expression + postfix chain.
    fn parse_primary(&mut self, env: &mut Env, i: usize, end: usize) -> (Val, usize) {
        if !self.spend() || i >= end {
            return (Val::top(), (i + 1).min(end.max(i + 1)));
        }
        let t = self.cx.toks;
        // Prefix operators.
        match punct(t, i) {
            Some('&') => {
                let mut j = i + 1;
                if ident(t, j) == Some("mut") {
                    j += 1;
                }
                let (v, next) = self.parse_primary(env, j, end);
                // `&mut chain` hands out mutable access: facts die.
                if ident(t, i + 1) == Some("mut") {
                    if let Some(c) = v.chain.clone() {
                        env.invalidate_prefix(&c);
                    }
                }
                return (v, next);
            }
            Some('*') => return self.parse_primary(env, i + 1, end),
            Some('-') => {
                let (v, next) = self.parse_primary(env, i + 1, end);
                let mut out = Val::int(Ival::exact(0).sub(v.ival), false);
                out.float = v.float;
                return (out, next);
            }
            Some('!') => {
                let (_, next) = self.parse_primary(env, i + 1, end);
                return (Val::top(), next);
            }
            Some('|') => {
                // Closure: bind parameters as unknowns, interpret the
                // body inline (iterator-adapter closures run within
                // the statement; see DESIGN §17 for the caveat).
                let mut j = i + 1;
                if punct(t, j) == Some('|') {
                    j += 1; // `||` empty params
                } else {
                    let mut params: Vec<String> = Vec::new();
                    while j < end && punct(t, j) != Some('|') {
                        if let Some(n) = ident(t, j) {
                            if !is_keyword_like(n) {
                                params.push(n.to_string());
                            }
                        }
                        j += 1;
                    }
                    j += 1;
                    // A single-parameter closure right after a
                    // `.windows(k)`/`.chunks*(k)` adapter receives that
                    // adapter's element (a slice of known length);
                    // anything else stays unknown.
                    let pend = match self.closure_elem.take() {
                        Some((at, ev)) if at == i => Some(ev),
                        other => {
                            self.closure_elem = other;
                            None
                        }
                    };
                    match (pend, params.as_slice()) {
                        (Some(ev), [p]) => {
                            let name = p.clone();
                            self.bind(env, &name, ev, None);
                        }
                        (_, ps) => {
                            for p in ps {
                                env.rebind(p, VarInfo::unknown());
                            }
                        }
                    }
                }
                if punct(t, j) == Some('{') {
                    let (next, out) = self.exec_block(env, j);
                    return self.parse_postfix(env, out.val, next, end);
                }
                let (v, next) = self.parse_expr(env, j, 2, end);
                return (v, next);
            }
            Some('(') => {
                let cb = close_delim(t, i);
                let (v, mut j) = self.parse_expr(env, i + 1, 2, cb);
                // Tuple: evaluate the rest for sites, value opaque.
                let mut tuple = false;
                while j < cb {
                    if punct(t, j) == Some(',') {
                        tuple = true;
                        let (_, nj) = self.parse_expr(env, j + 1, 2, cb);
                        j = nj.max(j + 1);
                    } else if punct(t, j) == Some('.') && punct(t, j + 1) == Some('.') {
                        // Range inside parens: evaluate the other side.
                        let skip = if punct(t, j + 2) == Some('=') { 3 } else { 2 };
                        tuple = true;
                        let (_, nj) = self.parse_expr(env, j + skip, 2, cb);
                        j = nj.max(j + skip);
                    } else {
                        j += 1;
                    }
                }
                let out = if tuple { Val::top() } else { v };
                return self.parse_postfix(env, out, cb + 1, end);
            }
            Some('[') => {
                // Array literal `[e; N]` / `[a, b, …]`.
                let cb = close_delim(t, i);
                let (first, mut j) = if i + 1 >= cb {
                    (Val::top(), i + 1)
                } else {
                    self.parse_expr(env, i + 1, 2, cb)
                };
                let mut out = Val::top();
                out.is_slice = true;
                out.elem_float = first.float;
                out.elem_uint = first.uint;
                if punct(t, j) == Some(';') {
                    let (n, _) = self.parse_expr(env, j + 1, 2, cb);
                    out.slice_len = Some((n.ival.meet(Ival::of(0, POS_INF)), n.sym.clone()));
                } else {
                    let mut count: i128 = if i + 1 >= cb { 0 } else { 1 };
                    while j < cb {
                        if punct(t, j) == Some(',') && j + 1 < cb {
                            count += 1;
                            let (_, nj) = self.parse_expr(env, j + 1, 2, cb);
                            j = nj.max(j + 1);
                            continue;
                        }
                        j += 1;
                    }
                    out.slice_len = Some((Ival::exact(count), None));
                }
                return self.parse_postfix(env, out, cb + 1, end);
            }
            Some('{') => {
                let (next, out) = self.exec_block(env, i);
                return (out.val, next);
            }
            _ => {}
        }
        // Numeric literal.
        if let Some(Tok::Num(text)) = t.get(i).map(|x| &x.tok) {
            let v = match parse_num(text) {
                NumLit::Int(n) => {
                    let explicit_uint = text.contains('u');
                    Val::int(Ival::exact(n), explicit_uint)
                }
                NumLit::Float => Val::float(),
                NumLit::Unknown => Val::top(),
            };
            return self.parse_postfix(env, v, i + 1, end);
        }
        let Some(name) = ident(t, i) else {
            return (Val::top(), i + 1);
        };
        match name {
            "if" => {
                let (next, term, val) = self.handle_if(env, i, end);
                let _ = term;
                return self.parse_postfix(env, val, next, end);
            }
            "match" => {
                let (next, _term, val) = self.handle_match(env, i, end);
                return self.parse_postfix(env, val, next, end);
            }
            "move" => return self.parse_primary(env, i + 1, end),
            "unsafe" if punct(t, i + 1) == Some('{') => {
                let (next, out) = self.exec_block(env, i + 1);
                return (out.val, next);
            }
            "true" | "false" => return (Val::top(), i + 1),
            "return" | "break" | "continue" => {
                // Expression-position early exit (match arms mostly).
                let next = self.consume_exit(env, i, end);
                return (Val::top(), next);
            }
            _ => {}
        }
        let name = name.to_string();
        // Macro invocation.
        if punct(t, i + 1) == Some('!') {
            return self.parse_macro(env, &name, i, end);
        }
        // Path `a::b::c` (call, const, or struct literal).
        if punct(t, i + 1) == Some(':') && punct(t, i + 2) == Some(':') {
            return self.parse_path(env, i, end);
        }
        // Plain chain `x`, `self.a.b`, `pair.0`.
        let mut segs = vec![name];
        let mut j = i + 1;
        let mut opaque = false;
        loop {
            if punct(t, j) == Some('.') && punct(t, j + 1) != Some('.') {
                match t.get(j + 1).map(|x| &x.tok) {
                    Some(Tok::Ident(f)) if punct(t, j + 2) != Some('(') && !is_keyword_like(f) => {
                        segs.push(f.clone());
                        j += 2;
                        continue;
                    }
                    Some(Tok::Num(_)) => {
                        opaque = true;
                        j += 2;
                        continue;
                    }
                    _ => {}
                }
            }
            break;
        }
        let v = if opaque {
            Val::top()
        } else {
            self.chain_val(env, &segs)
        };
        // Struct literal `Name { field: … }` (statement/let position).
        if punct(t, j) == Some('{')
            && segs.len() == 1
            && segs[0]
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase())
            && self.looks_like_struct_lit(j)
        {
            let next = self.parse_struct_lit(env, j, end);
            return (Val::top(), next);
        }
        self.parse_postfix(env, v, j, end)
    }

    fn looks_like_struct_lit(&self, open: usize) -> bool {
        let t = self.cx.toks;
        if punct(t, open + 1) == Some('}') {
            return true;
        }
        if punct(t, open + 1) == Some('.') && punct(t, open + 2) == Some('.') {
            return true;
        }
        matches!(
            (ident(t, open + 1), punct(t, open + 2), punct(t, open + 3)),
            (Some(_), Some(':'), p) if p != Some(':')
        )
    }

    /// Evaluates a struct literal body for sites; returns past `}`.
    fn parse_struct_lit(&mut self, env: &mut Env, open: usize, _end: usize) -> usize {
        let t = self.cx.toks;
        let cb = close_delim(t, open);
        let mut j = open + 1;
        while j < cb && self.spend() {
            if punct(t, j) == Some('.') && punct(t, j + 1) == Some('.') {
                let (_, nj) = self.parse_expr(env, j + 2, 2, cb);
                j = nj.max(j + 2);
                continue;
            }
            match (ident(t, j), punct(t, j + 1)) {
                (Some(_), Some(':')) if punct(t, j + 2) != Some(':') => {
                    let (_, nj) = self.parse_expr(env, j + 2, 2, cb);
                    j = nj.max(j + 2);
                }
                _ => j += 1,
            }
            if punct(t, j) == Some(',') {
                j += 1;
            }
        }
        cb + 1
    }

    /// `name!(…)` — `vec!` understood, panicking macros terminate
    /// elsewhere, the rest are opaque (args still scanned by skipping).
    fn parse_macro(&mut self, env: &mut Env, name: &str, i: usize, end: usize) -> (Val, usize) {
        let t = self.cx.toks;
        let open = i + 2;
        let cb = match punct(t, open) {
            Some('(' | '[' | '{') => close_delim(t, open),
            _ => return (Val::top(), i + 2),
        };
        if name == "vec" {
            let (first, j) = if open + 1 >= cb {
                (Val::top(), open + 1)
            } else {
                self.parse_expr(env, open + 1, 2, cb)
            };
            let mut out = Val::top();
            out.is_slice = true;
            out.elem_float = first.float;
            out.elem_uint = first.uint;
            if punct(t, j) == Some(';') {
                let (n, _) = self.parse_expr(env, j + 1, 2, cb);
                out.slice_len = Some((n.ival.meet(Ival::of(0, POS_INF)), n.sym.clone()));
            } else {
                let mut count: i128 = if open + 1 >= cb { 0 } else { 1 };
                let mut k = j;
                while k < cb {
                    if punct(t, k) == Some(',') && k + 1 < cb {
                        count += 1;
                        let (_, nk) = self.parse_expr(env, k + 1, 2, cb);
                        k = nk.max(k + 1);
                    } else {
                        k += 1;
                    }
                }
                out.slice_len = Some((Ival::exact(count), None));
            }
            return self.parse_postfix(env, out, cb + 1, end);
        }
        // Opaque macro: skip the argument group entirely (format
        // strings were blanked by the lexer, argument sites are rare
        // and would double-report through re-evaluation heuristics).
        (Val::top(), cb + 1)
    }

    /// `a::b::c` path expression: const, call, or struct literal.
    fn parse_path(&mut self, env: &mut Env, i: usize, end: usize) -> (Val, usize) {
        let t = self.cx.toks;
        let mut segs = vec![ident(t, i).unwrap_or_default().to_string()];
        let mut j = i + 1;
        let mut last_tok = i;
        while punct(t, j) == Some(':') && punct(t, j + 1) == Some(':') {
            if punct(t, j + 2) == Some('<') {
                j = crate::items::skip_generics_pub(t, j + 2);
                continue;
            }
            if let Some(seg) = ident(t, j + 2) {
                segs.push(seg.to_string());
                last_tok = j + 2;
                j += 3;
            } else {
                break;
            }
        }
        let last = segs.last().cloned().unwrap_or_default();
        let first = segs.first().cloned().unwrap_or_default();
        if punct(t, j) == Some('(') {
            let cb = close_delim(t, j);
            let (args, _mut_chains) = self.parse_args(env, j, cb);
            let v = match (first.as_str(), last.as_str()) {
                ("Vec", "new") | ("Vec", "default") => {
                    let mut v = Val::top();
                    v.is_slice = true;
                    v.slice_len = Some((Ival::exact(0), None));
                    v
                }
                ("Vec", "with_capacity") => {
                    let mut v = Val::top();
                    v.is_slice = true;
                    v.slice_len = Some((Ival::exact(0), None));
                    v
                }
                (_, "min") | (_, "max") if args.len() == 2 => {
                    self.min_max_val(&args[0], &args[1], last == "min")
                }
                ("f64", _) | ("f32", _) => Val::float(),
                _ => self.call_result(&args, last_tok),
            };
            return self.parse_postfix(env, v, cb + 1, end);
        }
        // Struct literal via path.
        if punct(t, j) == Some('{')
            && last.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && self.looks_like_struct_lit(j)
        {
            let next = self.parse_struct_lit(env, j, end);
            return (Val::top(), next);
        }
        // Associated const.
        let v = if last == "MAX" || last == "MIN" {
            let (f, u) = prim_flags(&first);
            let mut v = Val::top();
            v.float = f;
            v.uint = u && last == "MAX";
            if u {
                v.ival = if last == "MIN" {
                    Ival::exact(0)
                } else {
                    Ival::of(0, POS_INF)
                };
            }
            v
        } else if let Some(c) = self.cx.consts.get(&last) {
            Val::int(Ival::exact(*c), *c >= 0)
        } else {
            Val::top()
        };
        self.parse_postfix(env, v, j, end)
    }

    /// Parses a parenthesised argument list; returns values and any
    /// `&mut chain` chains (facts invalidated by the *caller*).
    fn parse_args(&mut self, env: &mut Env, open: usize, close: usize) -> (Vec<Val>, Vec<String>) {
        let t = self.cx.toks;
        let mut args = Vec::new();
        let mut muts = Vec::new();
        let mut j = open + 1;
        while j < close && self.spend() {
            let is_mut_ref = punct(t, j) == Some('&') && ident(t, j + 1) == Some("mut");
            let (v, nj) = self.parse_expr(env, j, 2, close);
            if is_mut_ref {
                if let Some(c) = v.chain.clone() {
                    env.invalidate_prefix(&c);
                    muts.push(c);
                }
            }
            args.push(v);
            j = nj.max(j + 1);
            while j < close && punct(t, j) != Some(',') {
                j += 1;
            }
            if punct(t, j) == Some(',') {
                j += 1;
            }
        }
        (args, muts)
    }

    /// Joined summary value for a call at callee token `ctok`,
    /// recording observed arguments for the param fixpoint.
    fn call_result(&mut self, args: &[Val], ctok: usize) -> Val {
        let Some(targets) = self.cx.targets.get(&ctok) else {
            return Val::top();
        };
        let mut iv = crate::intervals::BOTTOM;
        let mut float = false;
        let mut all = true;
        for tnode in targets {
            // Record observed args.
            let entry = self
                .args_out
                .entry(*tnode)
                .or_insert_with(|| vec![crate::intervals::BOTTOM; args.len()]);
            if entry.len() == args.len() {
                for (slot, a) in entry.iter_mut().zip(args) {
                    *slot = slot.join(a.ival);
                }
            } else {
                // Arity mismatch across call sites: poison.
                *entry = Vec::new();
            }
            match self.cx.summaries.get(tnode) {
                Some(s) => {
                    iv = iv.join(s.ret);
                    float |= s.ret_float;
                }
                None => all = false,
            }
        }
        if targets.is_empty() || !all {
            return Val::top();
        }
        let mut v = Val::int(iv, false);
        v.float = float;
        if float {
            v.ival = TOP;
        }
        v
    }

    fn min_max_val(&self, a: &Val, b: &Val, is_min: bool) -> Val {
        if a.float || b.float {
            return Val::float();
        }
        let iv = if is_min {
            Ival::of(a.ival.lo.min(b.ival.lo), a.ival.hi.min(b.ival.hi))
        } else {
            Ival::of(a.ival.lo.max(b.ival.lo), a.ival.hi.max(b.ival.hi))
        };
        let mut v = Val::int(iv, a.uint || b.uint);
        let mut fa: Vec<(String, i128)> = a.ubs.clone();
        if let Some(s) = &a.sym {
            fa.push(s.clone());
        }
        let mut fb: Vec<(String, i128)> = b.ubs.clone();
        if let Some(s) = &b.sym {
            fb.push(s.clone());
        }
        if is_min {
            // min(a,b) ≤ both: union of upper bounds.
            v.ubs = fa;
            v.ubs.extend(fb);
        } else {
            // max(a,b): only bounds shared by both (take the looser).
            for (c, oa) in &fa {
                for (c2, ob) in &fb {
                    if c == c2 {
                        v.ubs.push((c.clone(), (*oa).max(*ob)));
                    }
                }
            }
        }
        v.ubs.sort();
        v.ubs.dedup();
        v
    }

    /// Postfix chain: method calls, tuple fields, `?`, and the
    /// index/slice expressions that register implicit-panic sites.
    fn parse_postfix(&mut self, env: &mut Env, v: Val, i: usize, end: usize) -> (Val, usize) {
        let mut v = v;
        let mut i = i;
        let t = self.cx.toks;
        while i < end && self.spend() {
            match punct(t, i) {
                Some('?') => {
                    i += 1;
                }
                Some('.') if punct(t, i + 1) != Some('.') => {
                    if ident(t, i + 1) == Some("await") {
                        i += 2;
                        continue;
                    }
                    if let Some(Tok::Num(_)) = t.get(i + 1).map(|x| &x.tok) {
                        v = Val::top();
                        i += 2;
                        continue;
                    }
                    let Some(m) = ident(t, i + 1) else { break };
                    let m = m.to_string();
                    let mtok = i + 1;
                    let mut j = i + 2;
                    let mut turbofish = None;
                    if punct(t, j) == Some(':') && punct(t, j + 1) == Some(':') {
                        if punct(t, j + 2) == Some('<') {
                            turbofish = ident(t, j + 3).map(|s| s.to_string());
                            j = crate::items::skip_generics_pub(t, j + 2);
                        } else {
                            break;
                        }
                    }
                    if punct(t, j) != Some('(') {
                        // Field access surfacing in postfix position
                        // (after a call); value becomes opaque.
                        v = Val::top();
                        i += 2;
                        continue;
                    }
                    let cb = close_delim(t, j);
                    let chain = v.chain.clone();
                    // A `.windows(k)`/`.chunks_exact(k)` receiver types the
                    // single closure parameter of the *next* adapter in the
                    // chain; promote it for this argument list only.
                    self.closure_elem = self.pending_elem.take().map(|ev| (j + 1, ev));
                    let (args, _muts) = self.parse_args(env, j, cb);
                    self.closure_elem = None;
                    v = self.method_val(env, v, &m, turbofish.as_deref(), &args, mtok);
                    self.apply_method_effect(env, chain.as_deref(), &m, mtok);
                    i = cb + 1;
                }
                Some('[') => {
                    let cb = close_delim(t, i);
                    // Locate a top-level `..` to distinguish slicing.
                    let mut dots = None;
                    let mut d = i + 1;
                    while d < cb {
                        match punct(t, d) {
                            Some('(' | '[' | '{') => d = close_delim(t, d) + 1,
                            Some('.') if punct(t, d + 1) == Some('.') => {
                                dots = Some(d);
                                break;
                            }
                            _ => d += 1,
                        }
                    }
                    let base = v.chain.clone();
                    if let Some(d) = dots {
                        let inclusive = punct(t, d + 2) == Some('=');
                        let hstart = if inclusive { d + 3 } else { d + 2 };
                        let lo = if d == i + 1 {
                            Val::int(Ival::exact(0), true)
                        } else {
                            self.parse_expr(env, i + 1, 2, d).0
                        };
                        let hi = if hstart >= cb {
                            None
                        } else {
                            Some(self.parse_expr(env, hstart, 2, cb).0)
                        };
                        let (ok, why) = self.fits_slice(
                            env,
                            base.as_deref(),
                            v.is_slice,
                            &lo,
                            hi.as_ref(),
                            inclusive,
                        );
                        let text = self.render_around(i);
                        self.site(i, "slice", text, ok, why);
                        let mut out = Val::top();
                        out.is_slice = v.is_slice;
                        out.elem_float = v.elem_float;
                        out.elem_uint = v.elem_uint;
                        if let Some(h) = &hi {
                            let mut len = h.ival.sub(lo.ival).meet(Ival::of(0, POS_INF));
                            if inclusive {
                                len = len.add(Ival::exact(1));
                            }
                            let sym = if lo.ival.is_exactly(0) && !inclusive {
                                h.sym.clone()
                            } else {
                                None
                            };
                            out.slice_len = Some((len, sym));
                        } else if lo.ival.is_exactly(0) {
                            // `&xs[..]` aliases the whole slice.
                            if let Some(b) = &base {
                                out.slice_len = Some((Ival::of(0, POS_INF), Some((b.clone(), 0))));
                            }
                        }
                        v = out;
                    } else {
                        let (idx, _) = self.parse_expr(env, i + 1, 2, cb);
                        let (ok, why) = self.fits_index(env, base.as_deref(), v.is_slice, &idx);
                        let text = self.render_around(i);
                        self.site(i, "index", text, ok, why);
                        let mut out = Val::top();
                        out.float = v.elem_float;
                        out.uint = v.elem_uint;
                        if out.uint {
                            out.ival = Ival::of(0, POS_INF);
                        }
                        v = out;
                    }
                    i = cb + 1;
                }
                _ => break,
            }
        }
        // A stashed adapter element is only meaningful for the very
        // next method in *this* chain; never let it leak out.
        self.pending_elem = None;
        (v, i)
    }

    /// Transfer function for a method call's *value*.
    fn method_val(
        &mut self,
        env: &Env,
        recv: Val,
        m: &str,
        turbofish: Option<&str>,
        args: &[Val],
        mtok: usize,
    ) -> Val {
        match m {
            "len" => {
                let Some(c) = &recv.chain else {
                    let mut v = Val::int(Ival::of(0, POS_INF), true);
                    v.ival = Ival::of(0, POS_INF);
                    return v;
                };
                let iv = env
                    .lens
                    .get(c)
                    .copied()
                    .unwrap_or(Ival::of(0, POS_INF))
                    .meet(Ival::of(0, POS_INF));
                let mut v = Val::int(iv, true);
                v.sym = Some((c.clone(), 0));
                v.ubs = vec![(c.clone(), 0)];
                v
            }
            // No `recv.is_slice` requirement: whatever the receiver is,
            // these adapters only exist on slices and the element length
            // is dictated by `k` alone.
            "windows" | "chunks" | "chunks_mut" | "chunks_exact" | "chunks_exact_mut"
                if args.len() == 1 =>
            {
                // The iterator itself is opaque, but its *element* is a
                // slice: exactly `k` long for windows/chunks_exact,
                // `[1, k]` for chunks. Stash it for the closure of the
                // next adapter in this chain.
                let k = args[0].ival.meet(Ival::of(1, POS_INF));
                let li = if m == "chunks" || m == "chunks_mut" {
                    Ival::of(1, k.hi)
                } else {
                    k
                };
                if !li.is_empty() {
                    let mut ev = Val::top();
                    ev.is_slice = true;
                    ev.elem_float = recv.elem_float;
                    ev.elem_uint = recv.elem_uint;
                    ev.slice_len = Some((li, None));
                    self.pending_elem = Some(ev);
                }
                Val::top()
            }
            "min" | "max" if args.len() == 1 && !recv.float && !args[0].float => {
                self.min_max_val(&recv, &args[0], m == "min")
            }
            "clamp" if args.len() == 2 => {
                if recv.float || args[0].float || args[1].float {
                    return Val::float();
                }
                let mut v = Val::int(
                    Ival::of(args[0].ival.lo, args[1].ival.hi),
                    recv.uint || args[0].ival.lo >= 0,
                );
                v.ubs = args[1].ubs.clone();
                if let Some(s) = &args[1].sym {
                    v.ubs.push(s.clone());
                }
                v
            }
            "saturating_sub" if args.len() == 1 => {
                if recv.uint || recv.ival.lo >= 0 {
                    let raw = recv.ival.sub(args[0].ival).meet(Ival::of(0, POS_INF));
                    let mut v = Val::int(
                        raw.join(Ival::exact(0)).meet(Ival::of(0, POS_INF)),
                        recv.uint,
                    );
                    if args[0].ival.lo >= 0 {
                        // result ≤ recv: inherit recv's upper bounds.
                        v.ubs = recv.ubs.clone();
                        if let Some(s) = &recv.sym {
                            v.ubs.push(s.clone());
                        }
                    }
                    v
                } else {
                    Val::int(recv.ival.sub(args[0].ival), false)
                }
            }
            "saturating_add" | "wrapping_add" if args.len() == 1 => {
                let mut v = Val::int(recv.ival.add(args[0].ival), recv.uint);
                if m == "wrapping_add" {
                    v.ival = if recv.uint { Ival::of(0, POS_INF) } else { TOP };
                }
                v
            }
            "abs" => {
                if recv.float {
                    return Val::float();
                }
                if recv.ival.lo >= 0 {
                    Val::int(recv.ival, recv.uint)
                } else {
                    Val::int(Ival::of(0, POS_INF), false)
                }
            }
            "sum" | "product" => {
                if matches!(turbofish, Some("f64" | "f32")) || recv.elem_float {
                    Val::float()
                } else if recv.elem_uint {
                    Val::int(Ival::of(0, POS_INF), true)
                } else {
                    Val::top()
                }
            }
            "to_vec" | "to_owned" | "clone" if recv.is_slice => {
                let mut v = Val::top();
                v.is_slice = true;
                v.elem_float = recv.elem_float;
                v.elem_uint = recv.elem_uint;
                v.slice_len = match &recv.chain {
                    Some(c) => Some((
                        env.lens.get(c).copied().unwrap_or(Ival::of(0, POS_INF)),
                        Some((c.clone(), 0)),
                    )),
                    None => recv.slice_len.clone(),
                };
                v
            }
            "clone" => recv,
            _ if VIEW_METHODS.contains(&m) => recv,
            _ if FLOAT_METHODS.contains(&m) => Val::float(),
            _ if m.starts_with("checked_")
                || m.starts_with("overflowing_")
                || m.starts_with("wrapping_") =>
            {
                Val::top()
            }
            "get" | "get_mut" | "first" | "last" | "first_mut" | "last_mut" | "unwrap_or"
            | "unwrap_or_default" | "unwrap_or_else" => Val::top(),
            "count" | "position" | "capacity" => {
                let mut v = Val::int(Ival::of(0, POS_INF), true);
                if m == "position" {
                    v.ival = TOP;
                    v.uint = false;
                }
                v
            }
            _ => self.call_result(args, mtok),
        }
    }

    // -- statement execution -----------------------------------------------

    /// Executes the block starting at `{`; returns the index past `}`
    /// and whether every path through it diverges.
    fn exec_block(&mut self, env: &mut Env, open: usize) -> (usize, BlockOut) {
        let t = self.cx.toks;
        let close = close_delim(t, open);
        let mut j = open + 1;
        let mut last = Val::top();
        while j < close && self.spend() {
            let before = j;
            let (nj, out) = self.exec_stmt(env, j, close);
            if out.term {
                return (
                    close + 1,
                    BlockOut {
                        term: true,
                        val: Val::top(),
                    },
                );
            }
            last = out.val;
            j = nj.max(before + 1);
        }
        (
            close + 1,
            BlockOut {
                term: false,
                val: last,
            },
        )
    }

    fn exec_stmt(&mut self, env: &mut Env, i: usize, end: usize) -> (usize, BlockOut) {
        let t = self.cx.toks;
        let pass = BlockOut {
            term: false,
            val: Val::top(),
        };
        if !self.spend() || i >= end {
            return (end, pass);
        }
        match punct(t, i) {
            Some(';') => return (i + 1, pass),
            Some('#') => {
                let mut j = i + 1;
                if punct(t, j) == Some('!') {
                    j += 1;
                }
                if punct(t, j) == Some('[') {
                    return (close_delim(t, j) + 1, pass);
                }
                return (i + 1, pass);
            }
            Some('{') => return self.exec_block(env, i),
            _ => {}
        }
        if let Some(kw) = ident(t, i) {
            match kw {
                "let" => return self.handle_let(env, i, end),
                "if" => {
                    let (next, term, val) = self.handle_if(env, i, end);
                    return (next, BlockOut { term, val });
                }
                "while" => return self.handle_while(env, i, end),
                "for" => return self.handle_for(env, i, end),
                "loop" => return self.handle_loop(env, i, end),
                "match" => {
                    let (next, term, val) = self.handle_match(env, i, end);
                    return (next, BlockOut { term, val });
                }
                "return" => {
                    let mut j = i + 1;
                    self.ret_seen = true;
                    if j < end && !matches!(punct(t, j), Some(';' | '}')) {
                        let (v, nj) = self.parse_expr(env, j, 2, end);
                        self.ret = self.ret.join(if v.float { TOP } else { v.ival });
                        j = nj;
                    }
                    return (
                        self.skip_stmt(j.max(i + 1), end),
                        BlockOut {
                            term: true,
                            val: Val::top(),
                        },
                    );
                }
                "break" | "continue" => {
                    return (
                        self.skip_stmt(i + 1, end),
                        BlockOut {
                            term: true,
                            val: Val::top(),
                        },
                    );
                }
                "unsafe" if punct(t, i + 1) == Some('{') => {
                    return self.exec_block(env, i + 1);
                }
                "fn" | "struct" | "enum" | "impl" | "mod" | "trait" | "use" | "const"
                | "static" | "type" | "extern" | "macro_rules" => {
                    return (self.skip_item(i + 1, end), pass);
                }
                "assert" | "debug_assert" if punct(t, i + 1) == Some('!') => {
                    return self.handle_assert(env, i, end);
                }
                "assert_eq" | "debug_assert_eq" if punct(t, i + 1) == Some('!') => {
                    return self.handle_assert_eq(env, i, end, true);
                }
                "assert_ne" | "debug_assert_ne" if punct(t, i + 1) == Some('!') => {
                    return self.handle_assert_eq(env, i, end, false);
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if punct(t, i + 1) == Some('!') =>
                {
                    return (
                        self.skip_stmt(i + 2, end),
                        BlockOut {
                            term: true,
                            val: Val::top(),
                        },
                    );
                }
                _ => {}
            }
        }
        if let Some(r) = self.try_assign(env, i, end) {
            return r;
        }
        // Expression statement.
        let (v, mut j) = self.parse_expr(env, i, 2, end);
        if j < end && punct(t, j) != Some(';') {
            // Parser stalled on pattern-ish tokens: resynchronise.
            return (self.skip_stmt(j, end), pass);
        }
        if punct(t, j) == Some(';') {
            j += 1;
        }
        (
            j,
            BlockOut {
                term: false,
                val: v,
            },
        )
    }

    /// Skips to just past the next statement-level `;`.
    fn skip_stmt(&mut self, mut i: usize, end: usize) -> usize {
        let t = self.cx.toks;
        while i < end {
            match punct(t, i) {
                Some('(' | '[' | '{') => i = close_delim(t, i) + 1,
                Some(';') => return i + 1,
                _ => i += 1,
            }
        }
        end
    }

    /// Skips a nested item (fn/const/use/…): to its `;` or past its
    /// body braces. Nested fn bodies are *not* interpreted.
    fn skip_item(&mut self, mut i: usize, end: usize) -> usize {
        let t = self.cx.toks;
        while i < end {
            match punct(t, i) {
                Some('(' | '[') => i = close_delim(t, i) + 1,
                Some('{') => return close_delim(t, i) + 1,
                Some(';') => return i + 1,
                Some('<') => i = crate::items::skip_generics_pub(t, i),
                _ => i += 1,
            }
        }
        end
    }

    /// `return`/`break`/`continue` in expression position.
    fn consume_exit(&mut self, env: &mut Env, i: usize, end: usize) -> usize {
        let t = self.cx.toks;
        let mut j = i + 1;
        if ident(t, i) == Some("return")
            && j < end
            && !matches!(punct(t, j), Some(';' | '}' | ',' | ')'))
        {
            let (v, nj) = self.parse_expr(env, j, 2, end);
            self.ret = self.ret.join(if v.float { TOP } else { v.ival });
            self.ret_seen = true;
            j = nj;
        } else if ident(t, i) == Some("return") {
            self.ret_seen = true;
        }
        j
    }

    fn handle_let(&mut self, env: &mut Env, i: usize, end: usize) -> (usize, BlockOut) {
        let t = self.cx.toks;
        let mut j = i + 1;
        if ident(t, j) == Some("mut") {
            j += 1;
        }
        // Scan the pattern to a top-level `:` (type) / `=` (init) / `;`.
        let mut k = j;
        let mut colon = None;
        let mut eq = None;
        while k < end {
            match punct(t, k) {
                Some('(' | '[' | '{') => {
                    k = close_delim(t, k) + 1;
                    continue;
                }
                Some(':') if punct(t, k + 1) == Some(':') => {
                    k += 2;
                    continue;
                }
                Some(':') => {
                    colon = Some(k);
                    break;
                }
                Some('=') if punct(t, k + 1) != Some('=') => {
                    eq = Some(k);
                    break;
                }
                Some(';') => break,
                _ => {}
            }
            k += 1;
        }
        let pat_end = colon.or(eq).unwrap_or(k);
        let mut names: Vec<String> = Vec::new();
        let mut p = j;
        while p < pat_end {
            if let Some(n) = ident(t, p) {
                if !is_keyword_like(n)
                    && n.chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                    && punct(t, p + 1) != Some('!')
                {
                    names.push(n.to_string());
                }
            }
            p += 1;
        }
        let single = names.len() == 1 && pat_end == j + 1 && ident(t, j).is_some();
        // Optional type annotation.
        let mut ty = None;
        let mut eq_pos = eq;
        if let Some(c) = colon {
            let (ti, after) = parse_ty(t, c + 1, end, self.cx.consts);
            ty = Some(ti);
            let mut a = after.max(c + 1);
            while a < end && !matches!(punct(t, a), Some('=' | ';')) {
                a += 1;
            }
            eq_pos = if punct(t, a) == Some('=') {
                Some(a)
            } else {
                None
            };
        }
        let (val, after_init) = match eq_pos {
            Some(e) => self.parse_expr(env, e + 1, 2, end),
            None => (Val::top(), pat_end),
        };
        // `let … = … else { diverge }`.
        let mut j2 = after_init;
        if ident(t, j2) == Some("else") && punct(t, j2 + 1) == Some('{') {
            let mut dead = env.clone();
            let (next, _) = self.exec_block(&mut dead, j2 + 1);
            j2 = next;
        }
        let next = self.skip_stmt(j2, end);
        if single {
            self.bind(env, &names[0], val, ty.as_ref());
        } else {
            for n in &names {
                env.rebind(n, VarInfo::unknown());
            }
        }
        (
            next,
            BlockOut {
                term: false,
                val: Val::top(),
            },
        )
    }

    /// Binds `name` to `val` (meet with any declared type info),
    /// installing length facts for slice-like values.
    fn bind(&mut self, env: &mut Env, name: &str, val: Val, ty: Option<&TyInfo>) {
        let mut vi = VarInfo {
            ival: val.ival,
            float: val.float,
            uint: val.uint,
            sym: val.sym.clone(),
            ubs: val.ubs.clone(),
            is_slice: val.is_slice,
            elem_float: val.elem_float,
            elem_uint: val.elem_uint,
        };
        if let Some(ty) = ty {
            if ty.float {
                vi.float = true;
                vi.uint = false;
                vi.ival = TOP;
            }
            if ty.uint {
                vi.uint = true;
                vi.ival = vi.ival.meet(Ival::of(0, POS_INF));
            }
            if ty.slice {
                vi.is_slice = true;
                vi.elem_float |= ty.elem_float;
                vi.elem_uint |= ty.elem_uint;
            }
        }
        let alias = val.chain.clone().filter(|c| c != name && val.is_slice);
        let slice_len = val.slice_len.clone();
        let fixed = ty.and_then(|t| t.fixed);
        let is_slice = vi.is_slice;
        env.rebind(name, vi);
        if is_slice {
            let (li, lsym) = slice_len.unwrap_or((Ival::of(0, POS_INF), None));
            let li = match fixed {
                Some(n) => Ival::exact(n),
                None => li.meet(Ival::of(0, POS_INF)),
            };
            env.lens.insert(name.to_string(), li);
            if let Some((c, off)) = lsym {
                if c != name {
                    env.len_eq.push((name.to_string(), c, off));
                }
            } else if let Some(c) = alias {
                env.len_eq.push((name.to_string(), c, 0));
            }
        }
    }

    /// Recognises and executes `place (op)= expr;` statements,
    /// registering index/div/rem/sub sites on the place and RHS and
    /// candidate float accumulations.
    fn try_assign(&mut self, env: &mut Env, i: usize, end: usize) -> Option<(usize, BlockOut)> {
        let t = self.cx.toks;
        let mut j = i;
        let mut derefs = 0usize;
        while punct(t, j) == Some('*') {
            derefs += 1;
            j += 1;
        }
        let first = ident(t, j)?;
        if is_keyword_like(first) && first != "self" {
            return None;
        }
        let mut segs = vec![first.to_string()];
        j += 1;
        loop {
            if punct(t, j) == Some('.') && punct(t, j + 1) != Some('.') {
                match t.get(j + 1).map(|x| &x.tok) {
                    Some(Tok::Ident(f)) if punct(t, j + 2) != Some('(') && !is_keyword_like(f) => {
                        segs.push(f.clone());
                        j += 2;
                        continue;
                    }
                    Some(Tok::Num(_)) => {
                        segs.push(String::from("#"));
                        j += 2;
                        continue;
                    }
                    _ => {}
                }
            }
            break;
        }
        let mut idx_open = None;
        if punct(t, j) == Some('[') {
            idx_open = Some(j);
            j = close_delim(t, j) + 1;
            // Post-index field path (`grid[i].x = …`).
            while punct(t, j) == Some('.') {
                match t.get(j + 1).map(|x| &x.tok) {
                    Some(Tok::Ident(f)) if punct(t, j + 2) != Some('(') && !is_keyword_like(f) => {
                        j += 2
                    }
                    Some(Tok::Num(_)) => j += 2,
                    _ => break,
                }
            }
        }
        let (op, oplen) = match (punct(t, j), punct(t, j + 1), punct(t, j + 2)) {
            (Some('='), n, _) if n != Some('=') => ('=', 1),
            (Some(c @ ('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^')), Some('='), _) => (c, 2),
            (Some('<'), Some('<'), Some('=')) | (Some('>'), Some('>'), Some('=')) => ('s', 3),
            _ => return None,
        };
        let opaque = segs.iter().any(|s| s == "#");
        let base_val = if opaque {
            Val::top()
        } else {
            self.chain_val(env, &segs)
        };
        if let Some(io) = idx_open {
            let cb = close_delim(t, io);
            let (idx, _) = self.parse_expr(env, io + 1, 2, cb);
            let (ok, why) =
                self.fits_index(env, base_val.chain.as_deref(), base_val.is_slice, &idx);
            let text = self.render_around(io);
            self.site(io, "index", text, ok, why);
        }
        let lhs_val = if idx_open.is_some() {
            let mut v = Val::top();
            v.float = base_val.elem_float;
            v.uint = base_val.elem_uint;
            if v.uint {
                v.ival = Ival::of(0, POS_INF);
            }
            v
        } else {
            base_val.clone()
        };
        let (rhs, after) = self.parse_expr(env, j + oplen, 2, end);
        let newv = match op {
            '=' => rhs.clone(),
            's' => Val::int(
                if lhs_val.uint {
                    Ival::of(0, POS_INF)
                } else {
                    TOP
                },
                lhs_val.uint,
            ),
            c => self.combine(env, lhs_val.clone(), c, rhs.clone(), j),
        };
        // Order-nondeterministic float accumulation?
        if matches!(op, '+' | '-' | '*' | '/')
            && (lhs_val.float || rhs.float)
            && self.cx.collect
            && !self.cx.gated.get(i).copied().unwrap_or(false)
        {
            if let Some(lc) = self.loops.iter().rev().find(|l| l.nondet) {
                self.accums.push(FloatAccum {
                    line: t.get(i).map(|x| x.line).unwrap_or(0),
                    target: segs.join("."),
                    cause: lc.cause,
                    header_line: lc.header_line,
                });
            }
        }
        // Environment update.
        let chain = segs.join(".");
        if derefs > 0 {
            if segs.len() == 1 && !opaque {
                env.invalidate_prefix(&chain);
            }
        } else if idx_open.is_some() || opaque {
            // Element write: lengths unchanged, elements untracked.
        } else if segs.len() == 1 {
            let mut v = newv;
            v.var = None;
            v.chain = None;
            self.bind(env, &chain, v, None);
        } else if op == '=' {
            env.invalidate_prefix(&chain);
            if rhs.is_slice {
                if let Some((li, lsym)) = rhs.slice_len.clone() {
                    env.lens
                        .insert(chain.clone(), li.meet(Ival::of(0, POS_INF)));
                    if let Some((c, off)) = lsym {
                        if c != chain {
                            env.len_eq.push((chain.clone(), c, off));
                        }
                    }
                } else if let Some(c) = rhs.chain.clone() {
                    if c != chain {
                        env.len_eq.push((chain.clone(), c, 0));
                    }
                }
            }
        }
        Some((
            self.skip_stmt(after, end),
            BlockOut {
                term: false,
                val: Val::top(),
            },
        ))
    }

    // -- conditions and refinement -----------------------------------------

    /// Finds the `{` ending an `if`/`while` header and splits the
    /// condition into refinable atoms.
    fn parse_cond(&mut self, env: &mut Env, i: usize, end: usize) -> (Vec<Atom>, usize) {
        let t = self.cx.toks;
        let mut k = i;
        while k < end {
            match punct(t, k) {
                Some('(' | '[') => k = close_delim(t, k) + 1,
                Some('{') => break,
                _ => k += 1,
            }
        }
        let atoms = self.cond_atoms(env, i, k);
        (atoms, k)
    }

    /// Splits `[a, b)` on top-level `&&` and classifies each conjunct.
    /// A top-level `||` makes every atom unusable (still evaluated for
    /// panic sites).
    fn cond_atoms(&mut self, env: &mut Env, a: usize, b: usize) -> Vec<Atom> {
        self.cond_atoms_inner(env, a, b, false)
    }

    /// Like [`Self::cond_atoms`], but applies each conjunct to `env` as
    /// soon as it is classified, so later conjuncts are evaluated under
    /// the earlier ones' refinements — exactly the guarantee `&&`
    /// short-circuiting gives at runtime (`i < n && xs[i] > 0`).
    fn cond_atoms_refining(&mut self, env: &mut Env, a: usize, b: usize) -> Vec<Atom> {
        self.cond_atoms_inner(env, a, b, true)
    }

    fn cond_atoms_inner(&mut self, env: &mut Env, a: usize, b: usize, refine: bool) -> Vec<Atom> {
        let t = self.cx.toks;
        let mut ranges = Vec::new();
        let mut start = a;
        let mut k = a;
        let mut has_or = false;
        while k < b {
            match punct(t, k) {
                Some('(' | '[' | '{') => k = close_delim(t, k) + 1,
                Some('&') if punct(t, k + 1) == Some('&') => {
                    ranges.push((start, k));
                    k += 2;
                    start = k;
                }
                Some('|') if punct(t, k + 1) == Some('|') => {
                    has_or = true;
                    k += 2;
                }
                _ => k += 1,
            }
        }
        ranges.push((start, b));
        let mut atoms = Vec::new();
        for (ra, rb) in ranges {
            if ra >= rb {
                continue;
            }
            let atom = self.atom_from_range(env, ra, rb);
            let atom = if has_or { Atom::Opaque } else { atom };
            if refine {
                self.apply_atom(env, &atom, false);
            }
            atoms.push(atom);
        }
        atoms
    }

    fn atom_from_range(&mut self, env: &mut Env, a: usize, b: usize) -> Atom {
        let t = self.cx.toks;
        let mut p = a;
        let mut neg = false;
        while punct(t, p) == Some('!') && punct(t, p + 1) != Some('=') {
            neg = !neg;
            p += 1;
        }
        if ident(t, p) == Some("let") {
            // `if let` chains: bind nothing here, treat as opaque.
            return Atom::Opaque;
        }
        // Structural `chain.is_empty()`.
        if b >= 4
            && punct(t, b - 1) == Some(')')
            && punct(t, b - 2) == Some('(')
            && ident(t, b - 3) == Some("is_empty")
            && punct(t, b - 4) == Some('.')
        {
            let mut segs = Vec::new();
            let mut q = p;
            let mut pure = true;
            while q < b - 4 {
                match t.get(q).map(|x| &x.tok) {
                    Some(Tok::Ident(s)) if !is_keyword_like(s) => segs.push(s.clone()),
                    Some(Tok::Punct('.')) => {}
                    Some(Tok::Punct('&')) => {}
                    _ => {
                        pure = false;
                        break;
                    }
                }
                q += 1;
            }
            if pure && !segs.is_empty() {
                return Atom::Empty {
                    chain: segs.join("."),
                    neg,
                };
            }
        }
        // First top-level comparison operator.
        let mut k = p;
        while k < b {
            match punct(t, k) {
                Some('(' | '[' | '{') => {
                    k = close_delim(t, k) + 1;
                    continue;
                }
                Some('=') if punct(t, k + 1) == Some('=') => {
                    return self.cmp_atom(env, p, k, 2, b, CmpOp::Eq, neg)
                }
                Some('!') if punct(t, k + 1) == Some('=') => {
                    return self.cmp_atom(env, p, k, 2, b, CmpOp::Ne, neg)
                }
                Some('<') if punct(t, k + 1) == Some('=') => {
                    return self.cmp_atom(env, p, k, 2, b, CmpOp::Le, neg)
                }
                Some('>') if punct(t, k + 1) == Some('=') => {
                    return self.cmp_atom(env, p, k, 2, b, CmpOp::Ge, neg)
                }
                Some('<') if punct(t, k + 1) != Some('<') => {
                    return self.cmp_atom(env, p, k, 1, b, CmpOp::Lt, neg)
                }
                Some('>')
                    if punct(t, k + 1) != Some('>') && punct(t, k.wrapping_sub(1)) != Some('-') =>
                {
                    return self.cmp_atom(env, p, k, 1, b, CmpOp::Gt, neg)
                }
                _ => {}
            }
            k += 1;
        }
        // No comparison: evaluate for sites, unusable for refinement.
        let (_, _) = self.parse_expr(env, p, 2, b);
        Atom::Opaque
    }

    #[allow(clippy::too_many_arguments)]
    fn cmp_atom(
        &mut self,
        env: &mut Env,
        a: usize,
        opat: usize,
        ntok: usize,
        b: usize,
        op: CmpOp,
        neg: bool,
    ) -> Atom {
        let lhs = self.parse_expr(env, a, 5, opat).0;
        let rhs = self.parse_expr(env, opat + ntok, 5, b).0;
        let op = if neg { op.negate() } else { op };
        Atom::Cmp { lhs, op, rhs }
    }

    fn apply_atom(&mut self, env: &mut Env, atom: &Atom, negate: bool) {
        match atom {
            Atom::Opaque => {}
            Atom::Empty { chain, neg } => {
                let empty = *neg == negate; // !is_empty negated == is_empty
                let e = env
                    .lens
                    .entry(chain.clone())
                    .or_insert(Ival::of(0, POS_INF));
                *e = if empty {
                    e.meet(Ival::exact(0))
                } else {
                    e.meet(Ival::of(1, POS_INF))
                };
            }
            Atom::Cmp { lhs, op, rhs } => {
                let op = if negate { op.negate() } else { *op };
                self.refine_cmp(env, lhs, op, rhs);
                self.refine_cmp(env, rhs, flip(op), lhs);
            }
        }
    }

    /// Installs the fact `lhs op rhs` into the environment, refining
    /// the interval of `lhs`'s variable and/or length of `lhs`'s
    /// symbolic chain.
    fn refine_cmp(&mut self, env: &mut Env, lhs: &Val, op: CmpOp, rhs: &Val) {
        // Variable refinement. A shifted origin (`x + d` compared
        // against rhs) refines `x` against `rhs - d`.
        if let Some(v) = &lhs.var {
            let d = lhs.var_off;
            let hi = if rhs.ival.hi >= POS_INF {
                POS_INF
            } else {
                rhs.ival.hi.saturating_sub(d)
            };
            let lo = if rhs.ival.lo <= NEG_INF {
                NEG_INF
            } else {
                rhs.ival.lo.saturating_sub(d)
            };
            let mut facts: Vec<(String, i128)> = rhs
                .ubs
                .iter()
                .map(|(c, o)| (c.clone(), o.saturating_sub(d)))
                .collect();
            if let Some((c, o)) = &rhs.sym {
                facts.push((c.clone(), o.saturating_sub(d)));
            }
            if let Some(vi) = env.vars.get_mut(v) {
                match op {
                    CmpOp::Lt => {
                        if hi < POS_INF {
                            vi.ival = vi.ival.meet(Ival::of(NEG_INF, hi - 1));
                        }
                        for (c, o) in &facts {
                            vi.ubs.push((c.clone(), o - 1));
                        }
                    }
                    CmpOp::Le => {
                        vi.ival = vi.ival.meet(Ival::of(NEG_INF, hi));
                        for f in &facts {
                            vi.ubs.push(f.clone());
                        }
                    }
                    CmpOp::Gt => {
                        if lo > NEG_INF {
                            vi.ival = vi.ival.meet(Ival::of(lo + 1, POS_INF));
                        }
                    }
                    CmpOp::Ge => {
                        vi.ival = vi.ival.meet(Ival::of(lo, POS_INF));
                    }
                    CmpOp::Eq => {
                        vi.ival = vi.ival.meet(rhs.ival.sub(Ival::exact(d)));
                        if d == 0 && rhs.sym.is_some() {
                            vi.sym = rhs.sym.clone();
                        } else if let Some((c, o)) = &rhs.sym {
                            vi.sym = Some((c.clone(), o.saturating_sub(d)));
                        }
                        for f in &facts {
                            vi.ubs.push(f.clone());
                        }
                    }
                    CmpOp::Ne => {
                        if d == 0 {
                            if rhs.ival.is_exactly(vi.ival.lo) {
                                vi.ival = Ival::of(vi.ival.lo + 1, vi.ival.hi);
                            } else if rhs.ival.is_exactly(vi.ival.hi) {
                                vi.ival = Ival::of(vi.ival.lo, vi.ival.hi - 1);
                            }
                        }
                    }
                }
                vi.ubs.sort();
                vi.ubs.dedup();
            }
        }
        // Length refinement through `lhs == len(c) + off`.
        if let Some((c, off)) = &lhs.sym {
            let shift = |x: Ival| x.sub(Ival::exact(*off));
            let e = env.lens.entry(c.clone()).or_insert(Ival::of(0, POS_INF));
            match op {
                CmpOp::Lt => {
                    if rhs.ival.hi < POS_INF {
                        *e = e.meet(Ival::of(0, rhs.ival.hi - 1 - *off));
                    }
                }
                CmpOp::Le => {
                    if rhs.ival.hi < POS_INF {
                        *e = e.meet(Ival::of(0, rhs.ival.hi - *off));
                    }
                }
                CmpOp::Gt => {
                    if rhs.ival.lo > NEG_INF {
                        *e = e.meet(Ival::of(rhs.ival.lo + 1 - *off, POS_INF));
                    }
                }
                CmpOp::Ge => {
                    if rhs.ival.lo > NEG_INF {
                        *e = e.meet(Ival::of(rhs.ival.lo - *off, POS_INF));
                    }
                }
                CmpOp::Eq => {
                    *e = e.meet(shift(rhs.ival));
                    if let Some((c2, o2)) = &rhs.sym {
                        if c2 != c {
                            // len(c) + off == len(c2) + o2.
                            env.len_eq.push((c.clone(), c2.clone(), o2 - off));
                        }
                    }
                }
                CmpOp::Ne => {}
            }
        }
    }

    // -- asserts (the debug-checked contract) ------------------------------

    fn handle_assert(&mut self, env: &mut Env, i: usize, end: usize) -> (usize, BlockOut) {
        let t = self.cx.toks;
        let pass = BlockOut {
            term: false,
            val: Val::top(),
        };
        let open = i + 2;
        if punct(t, open) != Some('(') {
            return (self.skip_stmt(i, end), pass);
        }
        let cb = close_delim(t, open);
        // The condition ends at the first top-level `,` (message).
        let mut c = open + 1;
        let mut cend = cb;
        while c < cb {
            match punct(t, c) {
                Some('(' | '[' | '{') => c = close_delim(t, c) + 1,
                Some(',') => {
                    cend = c;
                    break;
                }
                _ => c += 1,
            }
        }
        self.in_assert = true;
        let atoms = self.cond_atoms(env, open + 1, cend);
        self.in_assert = false;
        for a in &atoms {
            self.apply_atom(env, a, false);
        }
        (self.skip_stmt(cb, end), pass)
    }

    fn handle_assert_eq(
        &mut self,
        env: &mut Env,
        i: usize,
        end: usize,
        eq: bool,
    ) -> (usize, BlockOut) {
        let t = self.cx.toks;
        let pass = BlockOut {
            term: false,
            val: Val::top(),
        };
        let open = i + 2;
        if punct(t, open) != Some('(') {
            return (self.skip_stmt(i, end), pass);
        }
        let cb = close_delim(t, open);
        let mut commas = Vec::new();
        let mut c = open + 1;
        while c < cb {
            match punct(t, c) {
                Some('(' | '[' | '{') => c = close_delim(t, c) + 1,
                Some(',') => {
                    commas.push(c);
                    c += 1;
                }
                _ => c += 1,
            }
        }
        let Some(&c1) = commas.first() else {
            return (self.skip_stmt(cb, end), pass);
        };
        let c2 = commas.get(1).copied().unwrap_or(cb);
        self.in_assert = true;
        let a = self.parse_expr(env, open + 1, 2, c1).0;
        let b = self.parse_expr(env, c1 + 1, 2, c2).0;
        self.in_assert = false;
        let op = if eq { CmpOp::Eq } else { CmpOp::Ne };
        self.apply_atom(env, &Atom::Cmp { lhs: a, op, rhs: b }, false);
        (self.skip_stmt(cb, end), pass)
    }

    // -- control flow ------------------------------------------------------

    fn handle_if(&mut self, env: &mut Env, i: usize, end: usize) -> (usize, bool, Val) {
        let t = self.cx.toks;
        if !self.spend() {
            return (end, false, Val::top());
        }
        if ident(t, i + 1) == Some("let") {
            // `if let PAT = expr { … }`: bind pattern idents fresh.
            let mut k = i + 2;
            let mut names = Vec::new();
            while k < end {
                match punct(t, k) {
                    Some('(' | '[') => {
                        let cb = close_delim(t, k);
                        let mut q = k + 1;
                        while q < cb {
                            if let Some(n) = ident(t, q) {
                                if !is_keyword_like(n)
                                    && n.chars()
                                        .next()
                                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                                {
                                    names.push(n.to_string());
                                }
                            }
                            q += 1;
                        }
                        k = cb + 1;
                        continue;
                    }
                    Some('=') if punct(t, k + 1) != Some('=') => break,
                    Some('{') => break,
                    _ => {}
                }
                if let Some(n) = ident(t, k) {
                    if !is_keyword_like(n)
                        && n.chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                    {
                        names.push(n.to_string());
                    }
                }
                k += 1;
            }
            let mut brace = k;
            if punct(t, k) == Some('=') {
                let (_, nb) = self.parse_expr(env, k + 1, 2, end);
                brace = nb;
            }
            while brace < end && punct(t, brace) != Some('{') {
                brace += 1;
            }
            if punct(t, brace) != Some('{') {
                return (self.skip_stmt(i, end), false, Val::top());
            }
            let mut then_env = env.clone();
            for n in &names {
                then_env.rebind(n, VarInfo::unknown());
            }
            let (after_then, tout) = self.exec_block(&mut then_env, brace);
            return self.finish_if(env, then_env, tout, Vec::new(), after_then, end);
        }
        // Pass 1 (sites suppressed): apply the condition's *side
        // effects* (method-call invalidation, `&mut` handouts) to the
        // shared env, so the else branch sees them too.
        let saved = self.in_assert;
        self.in_assert = true;
        let (_, brace) = self.parse_cond(env, i + 1, end);
        self.in_assert = saved;
        if punct(t, brace) != Some('{') {
            return (self.skip_stmt(i, end), false, Val::top());
        }
        // Pass 2 (sites recorded): evaluate against the then-branch env
        // with each conjunct applied as soon as it is parsed, so
        // `i < n && xs[i] > 0` discharges the way `&&` short-circuits.
        let mut then_env = env.clone();
        let atoms = self.cond_atoms_refining(&mut then_env, i + 1, brace);
        let (after_then, tout) = self.exec_block(&mut then_env, brace);
        self.finish_if(env, then_env, tout, atoms, after_then, end)
    }

    fn finish_if(
        &mut self,
        env: &mut Env,
        then_env: Env,
        tout: BlockOut,
        atoms: Vec<Atom>,
        after_then: usize,
        end: usize,
    ) -> (usize, bool, Val) {
        let t = self.cx.toks;
        let mut else_env = env.clone();
        // Negation is sound only for a single conjunct.
        if atoms.len() == 1 {
            self.apply_atom(&mut else_env, &atoms[0], true);
        }
        if ident(t, after_then) == Some("else") {
            let (next, eterm, eval_) = if ident(t, after_then + 1) == Some("if") {
                self.handle_if(&mut else_env, after_then + 1, end)
            } else if punct(t, after_then + 1) == Some('{') {
                let (n, out) = self.exec_block(&mut else_env, after_then + 1);
                (n, out.term, out.val)
            } else {
                (after_then + 1, false, Val::top())
            };
            let val = match (tout.term, eterm) {
                (true, true) => Val::top(),
                (true, false) => {
                    *env = else_env;
                    eval_
                }
                (false, true) => {
                    *env = then_env;
                    tout.val
                }
                (false, false) => {
                    *env = then_env.join(&else_env);
                    val_join(&tout.val, &eval_)
                }
            };
            return (next, tout.term && eterm, val);
        }
        // No else: the guard-clause pattern — a diverging then-branch
        // leaves the *negated* condition in force afterwards.
        if tout.term {
            *env = else_env;
        } else {
            *env = then_env.join(&else_env);
        }
        (after_then, false, Val::top())
    }

    fn handle_while(&mut self, env: &mut Env, i: usize, end: usize) -> (usize, BlockOut) {
        let t = self.cx.toks;
        let pass = BlockOut {
            term: false,
            val: Val::top(),
        };
        let is_let = ident(t, i + 1) == Some("let");
        // Locate the body.
        let mut brace = i + 1;
        while brace < end {
            match punct(t, brace) {
                Some('(' | '[') => brace = close_delim(t, brace) + 1,
                Some('{') => break,
                _ => brace += 1,
            }
        }
        if punct(t, brace) != Some('{') {
            return (self.skip_stmt(i, end), pass);
        }
        let close = close_delim(t, brace);
        // One abstract iteration over a body-write-havocked entry state.
        self.havoc_range(env, brace + 1, close);
        let mut body_env = env.clone();
        let atoms = if is_let {
            let mut names = Vec::new();
            let mut k = i + 2;
            while k < brace {
                match punct(t, k) {
                    Some('=') if punct(t, k + 1) != Some('=') => {
                        let _ = self.parse_expr(&mut body_env, k + 1, 2, brace);
                        break;
                    }
                    _ => {}
                }
                if let Some(n) = ident(t, k) {
                    if !is_keyword_like(n)
                        && n.chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                    {
                        names.push(n.to_string());
                    }
                }
                k += 1;
            }
            for n in &names {
                body_env.rebind(n, VarInfo::unknown());
            }
            Vec::new()
        } else {
            let (atoms, _) = self.parse_cond(&mut body_env, i + 1, end);
            for a in &atoms {
                self.apply_atom(&mut body_env, a, false);
            }
            atoms
        };
        let nondet = has_recv(t, i, close);
        self.loops.push(LoopCtx {
            nondet,
            cause: "drains a channel (recv order is arrival order)",
            header_line: t.get(i).map(|x| x.line).unwrap_or(0),
        });
        let (after, _) = self.exec_block(&mut body_env, brace);
        self.loops.pop();
        // Exit state: havocked entry plus the negated condition.
        if atoms.len() == 1 {
            self.apply_atom(env, &atoms[0], true);
        }
        (after, pass)
    }

    fn handle_loop(&mut self, env: &mut Env, i: usize, end: usize) -> (usize, BlockOut) {
        let t = self.cx.toks;
        let brace = i + 1;
        if punct(t, brace) != Some('{') {
            return (
                self.skip_stmt(i, end),
                BlockOut {
                    term: false,
                    val: Val::top(),
                },
            );
        }
        let close = close_delim(t, brace);
        self.havoc_range(env, brace + 1, close);
        let mut body_env = env.clone();
        let nondet = has_recv(t, brace, close);
        self.loops.push(LoopCtx {
            nondet,
            cause: "drains a channel (recv order is arrival order)",
            header_line: t.get(i).map(|x| x.line).unwrap_or(0),
        });
        let (after, _) = self.exec_block(&mut body_env, brace);
        self.loops.pop();
        let has_break = (brace..close).any(|k| ident(t, k) == Some("break"));
        (
            after,
            BlockOut {
                term: !has_break,
                val: Val::top(),
            },
        )
    }

    fn handle_for(&mut self, env: &mut Env, i: usize, end: usize) -> (usize, BlockOut) {
        let t = self.cx.toks;
        let pass = BlockOut {
            term: false,
            val: Val::top(),
        };
        let mut k = i + 1;
        let mut names = Vec::new();
        while k < end && ident(t, k) != Some("in") {
            if punct(t, k) == Some('{') {
                return (self.skip_stmt(i, end), pass);
            }
            if let Some(n) = ident(t, k) {
                if !is_keyword_like(n)
                    && n.chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                {
                    names.push(n.to_string());
                }
            }
            k += 1;
        }
        if ident(t, k) != Some("in") {
            return (self.skip_stmt(i, end), pass);
        }
        let hdr = k + 1;
        let mut brace = hdr;
        while brace < end {
            match punct(t, brace) {
                Some('(' | '[') => brace = close_delim(t, brace) + 1,
                Some('{') => break,
                _ => brace += 1,
            }
        }
        if punct(t, brace) != Some('{') {
            return (self.skip_stmt(i, end), pass);
        }
        let close = close_delim(t, brace);
        let (binds, it_nondet, it_cause) = self.iter_info(env, hdr, brace, &names);
        self.havoc_range(env, brace + 1, close);
        let mut body_env = env.clone();
        for n in &names {
            body_env.rebind(n, VarInfo::unknown());
        }
        for (n, v) in &binds {
            self.bind(&mut body_env, n, v.clone(), None);
        }
        let (nondet, cause) = if it_nondet {
            (true, it_cause)
        } else if has_recv(t, hdr, close) {
            (true, "drains a channel (recv order is arrival order)")
        } else {
            (false, "")
        };
        self.loops.push(LoopCtx {
            nondet,
            cause,
            header_line: t.get(i).map(|x| x.line).unwrap_or(0),
        });
        let (after, _) = self.exec_block(&mut body_env, brace);
        self.loops.pop();
        (after, pass)
    }

    /// Structural analysis of a `for` header: iteration bindings plus
    /// order-nondeterminism classification.
    #[allow(clippy::type_complexity)]
    fn iter_info(
        &mut self,
        env: &mut Env,
        hdr: usize,
        brace: usize,
        names: &[String],
    ) -> (Vec<(String, Val)>, bool, &'static str) {
        let t = self.cx.toks;
        let mut binds: Vec<(String, Val)> = Vec::new();
        // Numeric range `lo..hi`.
        let mut k = hdr;
        let mut dots = None;
        while k < brace {
            match punct(t, k) {
                Some('(' | '[') => k = close_delim(t, k) + 1,
                Some('.') if punct(t, k + 1) == Some('.') => {
                    dots = Some(k);
                    break;
                }
                _ => k += 1,
            }
        }
        if let Some(d) = dots {
            let inclusive = punct(t, d + 2) == Some('=');
            let hstart = if inclusive { d + 3 } else { d + 2 };
            let lo = if d == hdr {
                Val::int(Ival::exact(0), true)
            } else {
                self.parse_expr(env, hdr, 2, d).0
            };
            let hi = if hstart >= brace {
                Val::top()
            } else {
                self.parse_expr(env, hstart, 2, brace).0
            };
            if names.len() == 1 {
                let shift = if inclusive { 0 } else { -1 };
                let mut v = Val::int(
                    Ival::of(lo.ival.lo, hi.ival.hi.saturating_add(shift)),
                    lo.ival.lo >= 0,
                );
                let mut facts = hi.ubs.clone();
                if let Some(s) = &hi.sym {
                    facts.push(s.clone());
                }
                v.ubs = facts.into_iter().map(|(c, o)| (c, o + shift)).collect();
                binds.push((names[0].clone(), v));
            }
            return (binds, false, "");
        }
        // Chain base + adapter methods.
        let mut p = hdr;
        while punct(t, p) == Some('&') || ident(t, p) == Some("mut") {
            p += 1;
        }
        let mut segs: Vec<String> = Vec::new();
        match ident(t, p) {
            Some(n) if !is_keyword_like(n) => {
                segs.push(n.to_string());
                p += 1;
            }
            _ => {
                let _ = self.parse_expr(env, hdr, 2, brace);
                return (binds, false, "");
            }
        }
        while punct(t, p) == Some('.') && punct(t, p + 1) != Some('.') {
            match t.get(p + 1).map(|x| &x.tok) {
                Some(Tok::Ident(f)) if punct(t, p + 2) != Some('(') && !is_keyword_like(f) => {
                    segs.push(f.clone());
                    p += 2;
                }
                _ => break,
            }
        }
        let ct = self.walk_chain(env, &segs);
        let base = self.chain_val(env, &segs);
        let chain = segs.join(".");
        let mut nondet = ct.hash;
        let cause = "iterates a HashMap/HashSet (arbitrary order)";
        // Adapter methods (must be a clean `.m(…)` suffix chain).
        let mut methods: Vec<(String, usize, usize)> = Vec::new();
        let mut q = p;
        let mut clean = true;
        while q < brace {
            if punct(t, q) == Some('.') && ident(t, q + 1).is_some() && punct(t, q + 2) == Some('(')
            {
                let cb = close_delim(t, q + 2);
                methods.push((ident(t, q + 1).unwrap().to_string(), q + 2, cb));
                q = cb + 1;
            } else {
                clean = false;
                break;
            }
        }
        if !clean {
            let _ = self.parse_expr(env, hdr, 2, brace);
            return (binds, nondet, cause);
        }
        let elem_val = {
            let mut v = Val::top();
            v.float = base.elem_float;
            v.uint = base.elem_uint;
            if v.uint {
                v.ival = Ival::of(0, POS_INF);
            }
            v
        };
        let mut enumerated = false;
        let mut wind: Option<(char, Val)> = None;
        let mut zip_elem: Option<Val> = None;
        let mut unknown = false;
        for (m, ao, ac) in &methods {
            match m.as_str() {
                "enumerate" => enumerated = true,
                "windows" | "chunks" | "chunks_exact" | "chunks_mut" | "chunks_exact_mut" => {
                    let kv = self.parse_expr(env, ao + 1, 2, *ac).0;
                    let tag = if m == "windows" {
                        'w'
                    } else if m.starts_with("chunks_exact") {
                        'e'
                    } else {
                        'c'
                    };
                    wind = Some((tag, kv));
                }
                "zip" => match self.simple_iter_elem(env, ao + 1, *ac) {
                    Some((v, h)) => {
                        nondet |= h;
                        zip_elem = Some(v);
                    }
                    None => unknown = true,
                },
                "keys" | "values" => {}
                _ if VIEW_METHODS.contains(&m.as_str()) => {}
                _ => unknown = true,
            }
        }
        if unknown {
            return (binds, nondet, cause);
        }
        if let Some((tag, kv)) = wind {
            if names.len() == 1 {
                let mut v = Val::top();
                v.is_slice = true;
                v.elem_float = base.elem_float;
                v.elem_uint = base.elem_uint;
                let li = match tag {
                    'c' => Ival::of(1, kv.ival.hi.max(1)),
                    _ => kv.ival.meet(Ival::of(0, POS_INF)),
                };
                let sym = if tag == 'c' { None } else { kv.sym.clone() };
                v.slice_len = Some((li, sym));
                binds.push((names[0].clone(), v));
            }
        } else if enumerated {
            if names.len() == 2 {
                let mut iv = Val::int(Ival::of(0, POS_INF), true);
                iv.ubs = vec![(chain.clone(), -1)];
                if let Some(l) = env.lens.get(&chain) {
                    if l.hi < POS_INF {
                        iv.ival = Ival::of(0, (l.hi - 1).max(0));
                    }
                }
                binds.push((names[0].clone(), iv));
                binds.push((names[1].clone(), elem_val));
            }
        } else if let Some(z) = zip_elem {
            if names.len() == 2 {
                binds.push((names[0].clone(), elem_val));
                binds.push((names[1].clone(), z));
            }
        } else if names.len() == 1 {
            binds.push((names[0].clone(), elem_val));
        }
        (binds, nondet, cause)
    }

    /// Elem value of a plain `chain.view().view()…` iterator argument.
    fn simple_iter_elem(&mut self, env: &mut Env, a: usize, b: usize) -> Option<(Val, bool)> {
        let t = self.cx.toks;
        let mut p = a;
        while punct(t, p) == Some('&') || ident(t, p) == Some("mut") {
            p += 1;
        }
        let n = ident(t, p)?;
        if is_keyword_like(n) {
            return None;
        }
        let mut segs = vec![n.to_string()];
        p += 1;
        while punct(t, p) == Some('.') && punct(t, p + 1) != Some('.') {
            match t.get(p + 1).map(|x| &x.tok) {
                Some(Tok::Ident(f)) if punct(t, p + 2) != Some('(') && !is_keyword_like(f) => {
                    segs.push(f.clone());
                    p += 2;
                }
                _ => break,
            }
        }
        while p < b {
            if punct(t, p) == Some('.') {
                if let Some(m) = ident(t, p + 1) {
                    if punct(t, p + 2) == Some('(') && VIEW_METHODS.contains(&m) {
                        p = close_delim(t, p + 2) + 1;
                        continue;
                    }
                }
            }
            return None;
        }
        let ct = self.walk_chain(env, &segs);
        let base = self.chain_val(env, &segs);
        let mut v = Val::top();
        v.float = base.elem_float;
        v.uint = base.elem_uint;
        if v.uint {
            v.ival = Ival::of(0, POS_INF);
        }
        Some((v, ct.hash))
    }

    fn handle_match(&mut self, env: &mut Env, i: usize, end: usize) -> (usize, bool, Val) {
        let t = self.cx.toks;
        let mut brace = i + 1;
        while brace < end {
            match punct(t, brace) {
                Some('(' | '[') => brace = close_delim(t, brace) + 1,
                Some('{') => break,
                _ => brace += 1,
            }
        }
        if punct(t, brace) != Some('{') {
            return (self.skip_stmt(i, end), false, Val::top());
        }
        let _ = self.parse_expr(env, i + 1, 2, brace);
        let close = close_delim(t, brace);
        let mut j = brace + 1;
        let mut merged: Option<Env> = None;
        let mut mval: Option<Val> = None;
        let mut any = false;
        while j < close && self.spend() {
            // Pattern (and optional guard) up to `=>`.
            let mut names = Vec::new();
            while j < close {
                match punct(t, j) {
                    Some('(' | '[' | '{') => {
                        let cb = close_delim(t, j);
                        let mut q = j + 1;
                        while q < cb {
                            if let Some(n) = ident(t, q) {
                                if !is_keyword_like(n)
                                    && n.chars()
                                        .next()
                                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                                {
                                    names.push(n.to_string());
                                }
                            }
                            q += 1;
                        }
                        j = cb + 1;
                        continue;
                    }
                    Some('=') if punct(t, j + 1) == Some('>') => break,
                    _ => {}
                }
                if let Some(n) = ident(t, j) {
                    if !is_keyword_like(n)
                        && n.chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                        && punct(t, j + 1) != Some('!')
                    {
                        names.push(n.to_string());
                    }
                }
                j += 1;
            }
            if j >= close {
                break;
            }
            j += 2; // past `=>`
            let mut arm_env = env.clone();
            for n in &names {
                arm_env.rebind(n, VarInfo::unknown());
            }
            let (nj, term, val) = if punct(t, j) == Some('{') {
                let (n2, out) = self.exec_block(&mut arm_env, j);
                (n2, out.term, out.val)
            } else if matches!(ident(t, j), Some("return" | "break" | "continue")) {
                let n2 = self.consume_exit(&mut arm_env, j, close);
                (n2, true, Val::top())
            } else if matches!(
                ident(t, j),
                Some("panic" | "unreachable" | "todo" | "unimplemented")
            ) && punct(t, j + 1) == Some('!')
            {
                let n2 = if matches!(punct(t, j + 2), Some('(' | '[' | '{')) {
                    close_delim(t, j + 2) + 1
                } else {
                    j + 2
                };
                (n2, true, Val::top())
            } else {
                let (v, n2) = self.parse_expr(&mut arm_env, j, 2, close);
                (n2, false, v)
            };
            any = true;
            if !term {
                merged = Some(match merged {
                    Some(m) => m.join(&arm_env),
                    None => arm_env,
                });
                mval = Some(match mval {
                    Some(v) => val_join(&v, &val),
                    None => val,
                });
            }
            j = nj.max(j);
            // Resynchronise at the arm separator.
            while j < close && punct(t, j) != Some(',') {
                match punct(t, j) {
                    Some('(' | '[' | '{') => j = close_delim(t, j) + 1,
                    _ => j += 1,
                }
            }
            if punct(t, j) == Some(',') {
                j += 1;
            }
        }
        let term = any && merged.is_none();
        if let Some(m) = merged {
            *env = m;
        }
        (close + 1, term, mval.unwrap_or_else(Val::top))
    }

    /// Pre-loop write-set approximation: havoc everything the range
    /// can assign, mutate through `&mut`, or mutate via method calls.
    fn havoc_range(&mut self, env: &mut Env, a: usize, b: usize) {
        let t = self.cx.toks;
        let mut k = a;
        let lim = b.min(t.len());
        while k < lim {
            if punct(t, k) == Some('&') && ident(t, k + 1) == Some("mut") {
                if let Some((chain, nk)) = scan_chain(t, k + 2) {
                    env.invalidate_prefix(&chain);
                    k = nk;
                    continue;
                }
            }
            if let Some((chain, nk)) = scan_chain(t, k) {
                // Method call on the chain.
                if punct(t, nk) == Some('.')
                    && ident(t, nk + 1).is_some()
                    && punct(t, nk + 2) == Some('(')
                {
                    let m = ident(t, nk + 1).unwrap().to_string();
                    self.apply_method_effect(env, Some(&chain), &m, nk + 1);
                    k = nk + 3;
                    continue;
                }
                // Assignment target (optionally indexed element write).
                let mut e = nk;
                let mut indexed = false;
                if punct(t, e) == Some('[') {
                    e = close_delim(t, e) + 1;
                    indexed = true;
                }
                match (punct(t, e), punct(t, e + 1)) {
                    (Some('='), n2) if n2 != Some('=') => {
                        if !indexed {
                            env.invalidate_prefix(&chain);
                        }
                        k = e + 1;
                        continue;
                    }
                    (Some('+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'), Some('=')) => {
                        if !indexed {
                            env.invalidate_prefix(&chain);
                        }
                        k = e + 2;
                        continue;
                    }
                    _ => {}
                }
                k = nk.max(k + 1);
                continue;
            }
            k += 1;
        }
    }
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

/// Path-join of two expression values (if/match result merging).
fn val_join(a: &Val, b: &Val) -> Val {
    let mut v = Val::int(a.ival.join(b.ival), a.uint && b.uint);
    v.float = a.float && b.float;
    v.is_slice = a.is_slice && b.is_slice;
    v.elem_float = a.elem_float && b.elem_float;
    v.elem_uint = a.elem_uint && b.elem_uint;
    v.sym = if a.sym == b.sym { a.sym.clone() } else { None };
    v.ubs = a
        .ubs
        .iter()
        .filter(|u| b.ubs.contains(u))
        .cloned()
        .collect();
    v
}

/// Scans a pure `head.seg.seg` chain; returns the joined chain and the
/// index just past it. Stops before a `.method(` suffix.
fn scan_chain(toks: &[SpannedTok], i: usize) -> Option<(String, usize)> {
    let n = ident(toks, i)?;
    if is_keyword_like(n) && n != "self" {
        return None;
    }
    let mut segs = vec![n.to_string()];
    let mut j = i + 1;
    while punct(toks, j) == Some('.') && punct(toks, j + 1) != Some('.') {
        match toks.get(j + 1).map(|x| &x.tok) {
            Some(Tok::Ident(f)) if punct(toks, j + 2) != Some('(') && !is_keyword_like(f) => {
                segs.push(f.clone());
                j += 2;
            }
            _ => break,
        }
    }
    Some((segs.join("."), j))
}

// ---------------------------------------------------------------------------
// Per-function driver
// ---------------------------------------------------------------------------

/// Result of abstractly interpreting one function body.
struct FnRun {
    sites: Vec<Site>,
    accums: Vec<FloatAccum>,
    /// Return interval (already meet-ed with the declared type).
    ret: Ival,
    /// Joined argument intervals observed at each resolved call site.
    args_out: BTreeMap<usize, Vec<Ival>>,
    /// Final environment (used by the snippet/test entry point).
    env: Env,
}

fn run_fn(cx: &Cx<'_>, info: &NodeInfo, pstate: Option<&[Ival]>) -> FnRun {
    let mut interp = Interp::new(cx);
    let mut env = Env::default();
    for (n, (name, ty)) in info.params.iter().enumerate() {
        let mut vi = ty.to_var();
        if let Some(ps) = pstate {
            if let Some(iv) = ps.get(n) {
                if !iv.is_empty() {
                    let m = vi.ival.meet(*iv);
                    if !m.is_empty() {
                        vi.ival = m;
                    }
                }
            }
        }
        let is_slice = vi.is_slice;
        env.vars.insert(name.clone(), vi);
        if is_slice {
            env.lens.insert(
                name.clone(),
                match ty.fixed {
                    Some(k) => Ival::exact(k),
                    None => Ival::of(0, POS_INF),
                },
            );
        }
    }
    let mut ret = crate::intervals::BOTTOM;
    if let Some((b0, _)) = cx.item.body {
        let (_, out) = interp.exec_block(&mut env, b0);
        ret = interp.ret;
        if !out.term {
            ret = ret.join(if out.val.float { TOP } else { out.val.ival });
        }
    }
    if ret.is_empty() {
        ret = TOP;
    }
    if info.ret.uint {
        ret = ret.meet(Ival::of(0, POS_INF));
        if ret.is_empty() {
            ret = Ival::of(0, POS_INF);
        }
    }
    if interp.exhausted && cx.collect {
        let line = cx
            .toks
            .get(cx.item.sig_tok)
            .map(|t| t.line)
            .unwrap_or(cx.item.sig_line);
        interp.sites.push(Site {
            line,
            kind: "budget",
            text: format!("fn {}", cx.item.name),
            discharged: false,
            why: "analysis fuel exhausted; body not fully interpreted".to_string(),
        });
    }
    FnRun {
        sites: interp.sites,
        accums: interp.accums,
        ret,
        args_out: interp.args_out,
        env,
    }
}

// ---------------------------------------------------------------------------
// Corpus driver
// ---------------------------------------------------------------------------

/// Files in scope for the `float_determinism` rule: every production
/// crate source (the rule is cheap and the determinism contract spans
/// the whole engine, not just the hot files).
pub(crate) fn float_det_scope(rel_path: &str) -> bool {
    let rel = rel_path.replace('\\', "/");
    [
        "crates/core/src/",
        "crates/sim/src/",
        "crates/baselines/src/",
        "crates/linalg/src/",
        "crates/trace/src/",
        "crates/serve/src/",
    ]
    .iter()
    .any(|p| rel.starts_with(p))
}

/// Scans every file for top-level `const NAME: <int ty> = <literal>;`
/// items; names defined twice with different values are dropped.
fn corpus_consts(files: &[FileScan]) -> BTreeMap<String, i128> {
    let mut consts: BTreeMap<String, i128> = BTreeMap::new();
    let mut conflict: BTreeSet<String> = BTreeSet::new();
    for f in files {
        let t = &f.parsed.toks;
        for i in 0..t.len() {
            if ident(t, i) != Some("const") || punct(t, i + 2) != Some(':') {
                continue;
            }
            let Some(name) = ident(t, i + 1) else {
                continue;
            };
            let mut j = i + 3;
            while j < t.len() && !matches!(punct(t, j), Some('=' | ';' | '{' | '}')) {
                j += 1;
            }
            if punct(t, j) != Some('=') {
                continue;
            }
            let neg = punct(t, j + 1) == Some('-');
            let nt = if neg { j + 2 } else { j + 1 };
            let Some(Tok::Num(text)) = t.get(nt).map(|x| &x.tok) else {
                continue;
            };
            if punct(t, nt + 1) != Some(';') {
                continue;
            }
            if let NumLit::Int(v) = parse_num(text) {
                let v = if neg { -v } else { v };
                match consts.get(name) {
                    Some(old) if *old != v => {
                        conflict.insert(name.to_string());
                    }
                    Some(_) => {}
                    None => {
                        consts.insert(name.to_string(), v);
                    }
                }
            }
        }
    }
    for c in &conflict {
        consts.remove(c);
    }
    consts
}

/// Full interprocedural pass: summary rounds to a fixpoint over the
/// call graph, then a collecting pass over in-scope files that turns
/// undischarged sites and nondet float accumulations into violations
/// (honouring `// lint: allow(...)` / `// lint: ordered_merge`).
pub(crate) fn analyze(files: &mut [FileScan], g: &GraphOutcome) -> DataflowOutcome {
    let mut out = DataflowOutcome::default();
    let consts = corpus_consts(files);
    // Corpus-wide struct field tables (first definition wins; the
    // workspace has no cross-crate duplicate struct names that differ).
    let mut fields: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    let mut elems: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for f in files.iter() {
        for (k, v) in &f.parsed.struct_fields {
            fields.entry(k.clone()).or_insert_with(|| v.clone());
        }
        for (k, v) in &f.parsed.struct_field_elems {
            elems.entry(k.clone()).or_insert_with(|| v.clone());
        }
    }
    // Signature info per graph node.
    let mut infos: Vec<NodeInfo> = Vec::with_capacity(g.fns.len());
    let mut node_mut_self: Vec<bool> = Vec::with_capacity(g.fns.len());
    for n in &g.fns {
        let f = &files[n.file];
        let info = parse_sig(&f.parsed.toks, &f.parsed.fns[n.item], &consts);
        node_mut_self.push(info.mut_self);
        infos.push(info);
    }
    // Per-file call-site → resolved-targets maps.
    let mut file_targets: Vec<BTreeMap<usize, Vec<usize>>> =
        (0..files.len()).map(|_| BTreeMap::new()).collect();
    for n in &g.fns {
        let item = &files[n.file].parsed.fns[n.item];
        for (ci, call) in item.calls.iter().enumerate() {
            if let Some(res) = n.resolved.get(ci) {
                if !res.is_empty() {
                    file_targets[n.file].insert(call.tok, res.clone());
                }
            }
        }
    }
    // A function is "shadow-called" when its name appears where the
    // interpreter will not see the call: taken as a value (no `(`
    // follows), or invoked from cfg-gated/test code. Either poisons
    // observed-argument param summaries for that name.
    let fn_names: BTreeSet<String> = g
        .fns
        .iter()
        .map(|n| files[n.file].parsed.fns[n.item].name.clone())
        .collect();
    let mut shadow_called: BTreeSet<String> = BTreeSet::new();
    for f in files.iter() {
        let t = &f.parsed.toks;
        for i in 0..t.len() {
            let Some(Tok::Ident(s)) = t.get(i).map(|x| &x.tok) else {
                continue;
            };
            if !fn_names.contains(s.as_str()) {
                continue;
            }
            let called = punct(t, i + 1) == Some('(');
            let declared = i > 0 && ident(t, i - 1) == Some("fn");
            let gated = f.parsed.cfg_gated_toks.get(i).copied().unwrap_or(false);
            if (!called && !declared) || (called && gated) {
                shadow_called.insert(s.clone());
            }
        }
    }
    // Test functions call anything in their crate; their bodies are
    // never interpreted, so any name a test mentions is poisoned too.
    for f in files.iter() {
        for item in &f.parsed.fns {
            if !item.is_test {
                continue;
            }
            let Some((b0, b1)) = item.body else { continue };
            for i in b0..=b1.min(f.parsed.toks.len().saturating_sub(1)) {
                if let Some(Tok::Ident(s)) = f.parsed.toks.get(i).map(|x| &x.tok) {
                    if fn_names.contains(s.as_str()) {
                        shadow_called.insert(s.clone());
                    }
                }
            }
        }
    }
    let runnable: Vec<bool> = g
        .fns
        .iter()
        .map(|n| {
            let item = &files[n.file].parsed.fns[n.item];
            item.body.is_some() && !item.is_test && !item.cfg_gated
        })
        .collect();
    let eligible: Vec<bool> = g
        .fns
        .iter()
        .enumerate()
        .map(|(gi, n)| {
            let item = &files[n.file].parsed.fns[n.item];
            let info = &infos[gi];
            info.clean
                && !info.is_pub
                && !item.is_test
                && !info.params.is_empty()
                && !shadow_called.contains(&item.name)
        })
        .collect();
    // Summary rounds: round 0 runs with no summaries (every call site
    // conservatively TOP), later rounds consume the previous round's
    // return intervals and observed-argument joins; round 2 widens
    // against round 1 so the chain stabilises.
    let mut summaries: BTreeMap<usize, FnSummary> = BTreeMap::new();
    let mut param_acc: BTreeMap<usize, Vec<Ival>> = BTreeMap::new();
    for round in 0..3 {
        let mut new_sums: BTreeMap<usize, FnSummary> = BTreeMap::new();
        let mut new_params: BTreeMap<usize, Vec<Ival>> = BTreeMap::new();
        for (gi, n) in g.fns.iter().enumerate() {
            if !runnable[gi] {
                continue;
            }
            let f = &files[n.file];
            let cx = Cx {
                toks: &f.parsed.toks,
                gated: &f.parsed.cfg_gated_toks,
                item: &f.parsed.fns[n.item],
                consts: &consts,
                fields: &fields,
                elems: &elems,
                summaries: &summaries,
                targets: &file_targets[n.file],
                node_mut_self: &node_mut_self,
                collect: false,
            };
            let pstate = if eligible[gi] {
                param_acc.get(&gi).map(|v| v.as_slice())
            } else {
                None
            };
            let run = run_fn(&cx, &infos[gi], pstate);
            let mut ret = run.ret;
            if round >= 2 {
                if let Some(old) = summaries.get(&gi) {
                    ret = old.ret.widen(ret);
                }
            }
            new_sums.insert(
                gi,
                FnSummary {
                    ret,
                    ret_float: infos[gi].ret.float,
                },
            );
            for (tn, ivs) in run.args_out {
                match new_params.get_mut(&tn) {
                    Some(cur) => {
                        if cur.len() == ivs.len() {
                            for (a, b) in cur.iter_mut().zip(&ivs) {
                                *a = a.join(*b);
                            }
                        } else {
                            cur.clear();
                        }
                    }
                    None => {
                        new_params.insert(tn, ivs);
                    }
                }
            }
        }
        summaries = new_sums;
        let prev = std::mem::take(&mut param_acc);
        param_acc = new_params
            .into_iter()
            .filter(|(tn, ivs)| !ivs.is_empty() && infos[*tn].params.len() == ivs.len())
            .map(|(tn, mut ivs)| {
                // Widen against the previous round so a bound that is
                // still moving jumps to its sentinel rather than
                // narrowing the entry state below a later round's
                // reachable arguments.
                if let Some(old) = prev.get(&tn) {
                    for (iv, o) in ivs.iter_mut().zip(old) {
                        *iv = o.widen(*iv);
                    }
                }
                (tn, ivs)
            })
            .collect();
    }
    // Collecting pass over in-scope files.
    struct Pending {
        file: usize,
        item: usize,
        qname: String,
        sites: Vec<Site>,
        accums: Vec<FloatAccum>,
    }
    let mut pend: Vec<Pending> = Vec::new();
    for (gi, n) in g.fns.iter().enumerate() {
        let rel = &files[n.file].rel_path;
        if !runnable[gi] || !(implicit_panic_scope(rel) || float_det_scope(rel)) {
            continue;
        }
        let f = &files[n.file];
        let cx = Cx {
            toks: &f.parsed.toks,
            gated: &f.parsed.cfg_gated_toks,
            item: &f.parsed.fns[n.item],
            consts: &consts,
            fields: &fields,
            elems: &elems,
            summaries: &summaries,
            targets: &file_targets[n.file],
            node_mut_self: &node_mut_self,
            collect: true,
        };
        let pstate = if eligible[gi] {
            param_acc.get(&gi).map(|v| v.as_slice())
        } else {
            None
        };
        let mut run = run_fn(&cx, &infos[gi], pstate);
        // Re-interpreted subexpressions (branch joins, loop re-runs)
        // can register a site twice; keep one copy, preferring the
        // undischarged verdict (`false < true` after the sort).
        run.sites.sort_by(|a, b| {
            (a.line, a.kind, &a.text, a.discharged).cmp(&(b.line, b.kind, &b.text, b.discharged))
        });
        run.sites
            .dedup_by(|a, b| a.line == b.line && a.kind == b.kind && a.text == b.text);
        run.accums
            .sort_by(|a, b| (a.line, &a.target, a.cause).cmp(&(b.line, &b.target, b.cause)));
        run.accums
            .dedup_by(|a, b| a.line == b.line && a.target == b.target);
        pend.push(Pending {
            file: n.file,
            item: n.item,
            qname: n.qname.clone(),
            sites: run.sites,
            accums: run.accums,
        });
    }
    for p in pend {
        let rel = files[p.file].rel_path.clone();
        let norm = rel.replace('\\', "/");
        let ip_scope = implicit_panic_scope(&rel);
        let hot = HOT_PATH_FILES.contains(&norm.as_str());
        let sig_line = files[p.file].parsed.fns[p.item].sig_line;
        if ip_scope {
            let (mut nsites, mut ndis) = (0usize, 0usize);
            for s in &p.sites {
                nsites += 1;
                if hot {
                    out.hot_sites += 1;
                }
                if s.discharged {
                    ndis += 1;
                    if hot {
                        out.hot_discharged += 1;
                    }
                    continue;
                }
                let f = &mut files[p.file];
                if let Some(d) = f.allow_site(s.line, "implicit_panic") {
                    f.credit(d, "implicit_panic");
                    if hot {
                        out.hot_vouched += 1;
                    }
                } else {
                    out.violations.push(Violation {
                        file: rel.clone(),
                        line: s.line + 1,
                        rule: "implicit_panic",
                        message: format!(
                            "implicit {} panic site `{}` not discharged ({}); prove it with a bound the interval engine can see, or vouch with `// lint: allow(implicit_panic) -- reason`",
                            s.kind, s.text, s.why
                        ),
                        related: vec![Related {
                            file: rel.clone(),
                            line: sig_line + 1,
                            message: format!("in fn {}", p.qname),
                        }],
                    });
                }
            }
            out.fn_stats.push(FnPanicStats {
                file: p.file,
                item: p.item,
                sites: nsites,
                discharged: ndis,
            });
        }
        if float_det_scope(&rel) {
            for a in &p.accums {
                let f = &mut files[p.file];
                if let Some(d) = f
                    .ordered_merge_at(a.line)
                    .or_else(|| f.ordered_merge_at(a.header_line))
                {
                    f.credit(d, "ordered_merge");
                    continue;
                }
                if let Some(d) = f.allow_site(a.line, "float_determinism") {
                    f.credit(d, "float_determinism");
                    continue;
                }
                out.violations.push(Violation {
                    file: rel.clone(),
                    line: a.line + 1,
                    rule: "float_determinism",
                    message: format!(
                        "float accumulation into `{}` inside a loop with nondeterministic order ({}); merge in ascending index order and mark the loop `// lint: ordered_merge`",
                        a.target, a.cause
                    ),
                    related: vec![Related {
                        file: rel.clone(),
                        line: a.header_line + 1,
                        message: "order-nondeterministic loop header".to_string(),
                    }],
                });
            }
        }
    }
    out.violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

// ---------------------------------------------------------------------------
// Standalone snippet entry point (unit tests + interval-soundness
// proptest)
// ---------------------------------------------------------------------------

/// Interprets the first function of `source` in isolation: no call
/// graph, empty corpus tables, full site collection.
fn snippet_run(source: &str) -> FnRun {
    let lines = crate::lex(source);
    let in_test = vec![false; lines.len()];
    let parsed = crate::items::parse_file(&lines, &in_test);
    let consts = BTreeMap::new();
    let fields = BTreeMap::new();
    let elems = BTreeMap::new();
    let summaries = BTreeMap::new();
    let targets = BTreeMap::new();
    let item = parsed.fns.first().expect("snippet declares a fn");
    let cx = Cx {
        toks: &parsed.toks,
        gated: &parsed.cfg_gated_toks,
        item,
        consts: &consts,
        fields: &fields,
        elems: &elems,
        summaries: &summaries,
        targets: &targets,
        node_mut_self: &[],
        collect: true,
    };
    let info = parse_sig(&parsed.toks, item, &consts);
    run_fn(&cx, &info, None)
}

/// Final `(lo, hi)` integer interval per local of the snippet's first
/// function — the hook `lint::infer_intervals` re-exports for the
/// interval-soundness proptest.
pub(crate) fn snippet_intervals(source: &str) -> BTreeMap<String, (i128, i128)> {
    snippet_run(source)
        .env
        .vars
        .iter()
        .map(|(k, v)| (k.clone(), (v.ival.lo, v.ival.hi)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str) -> Vec<(String, bool)> {
        snippet_run(src)
            .sites
            .into_iter()
            .map(|s| (s.kind.to_string(), s.discharged))
            .collect()
    }

    #[test]
    fn counted_for_loop_index_discharges() {
        let s = sites(
            "fn f(xs: &[f64]) -> f64 {\n\
             \x20   let mut t = 0.0;\n\
             \x20   for i in 0..xs.len() {\n\
             \x20       t += xs[i];\n\
             \x20   }\n\
             \x20   t\n\
             }\n",
        );
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0], ("index".to_string(), true));
    }

    #[test]
    fn guard_clause_discharges_index() {
        let s = sites(
            "fn f(xs: &[u64], i: usize) -> u64 {\n\
             \x20   if i >= xs.len() {\n\
             \x20       return 0;\n\
             \x20   }\n\
             \x20   xs[i]\n\
             }\n",
        );
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0], ("index".to_string(), true));
    }

    #[test]
    fn unguarded_index_is_reported() {
        let s = sites("fn f(xs: &[u64], i: usize) -> u64 {\n    xs[i]\n}\n");
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0], ("index".to_string(), false));
    }

    #[test]
    fn division_discharge_needs_nonzero_divisor() {
        let s = sites(
            "fn f(x: usize, y: usize) -> usize {\n\
             \x20   let a = x / 8;\n\
             \x20   let b = x / y;\n\
             \x20   a + b\n\
             }\n",
        );
        assert_eq!(s.len(), 2, "{s:?}");
        assert_eq!(s[0], ("div".to_string(), true));
        assert_eq!(s[1], ("div".to_string(), false));
    }

    #[test]
    fn guarded_unsigned_sub_discharges() {
        let s = sites(
            "fn f(xs: &[u64], i: usize) -> usize {\n\
             \x20   if i >= xs.len() {\n\
             \x20       return 0;\n\
             \x20   }\n\
             \x20   xs.len() - i\n\
             }\n",
        );
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0], ("sub".to_string(), true));
    }

    #[test]
    fn full_range_slice_discharges() {
        let s = sites(
            "fn f(xs: &[u64]) -> u64 {\n\
             \x20   let ys = &xs[0..xs.len()];\n\
             \x20   ys.iter().sum()\n\
             }\n",
        );
        assert_eq!(s.len(), 1, "{s:?}");
        assert_eq!(s[0], ("slice".to_string(), true));
    }

    #[test]
    fn hash_iteration_float_accum_flagged() {
        let run = snippet_run(
            "fn f(m: &HashMap<u64, f64>) -> f64 {\n\
             \x20   let mut s = 0.0;\n\
             \x20   for v in m.values() {\n\
             \x20       s += v;\n\
             \x20   }\n\
             \x20   s\n\
             }\n",
        );
        assert_eq!(run.accums.len(), 1, "expected one float accumulation");
    }

    #[test]
    fn counted_float_accum_not_flagged() {
        let run = snippet_run(
            "fn f(xs: &[f64]) -> f64 {\n\
             \x20   let mut s = 0.0;\n\
             \x20   for i in 0..xs.len() {\n\
             \x20       s += xs[i];\n\
             \x20   }\n\
             \x20   s\n\
             }\n",
        );
        assert!(run.accums.is_empty());
    }

    #[test]
    fn snippet_intervals_track_constants() {
        let iv = snippet_intervals(
            "fn f() -> i64 {\n\
             \x20   let a = 3;\n\
             \x20   let b = a * 4 + 1;\n\
             \x20   b\n\
             }\n",
        );
        assert_eq!(iv.get("a"), Some(&(3, 3)));
        assert_eq!(iv.get("b"), Some(&(13, 13)));
    }

    #[test]
    fn branch_join_widens_to_hull() {
        let iv = snippet_intervals(
            "fn f(c: bool) -> i64 {\n\
             \x20   let x = if c { 2 } else { 7 };\n\
             \x20   x\n\
             }\n",
        );
        assert_eq!(iv.get("x"), Some(&(2, 7)));
    }
}
