pub fn undocumented(x: f64) -> f64 {
    x * 2.0
}

/// Documented, so fine.
pub fn documented(x: f64) -> f64 {
    x + 1.0
}
