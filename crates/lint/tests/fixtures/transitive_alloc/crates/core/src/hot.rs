// lint: deny_alloc

pub struct Agent {
    dim: usize,
}

impl Agent {
    /// No direct allocation here — the leak is two hops away, in a file
    /// the token rule never watches.
    pub fn decide(&self) -> f64 {
        megh_sim::scratch::expand(self.dim)
    }
}
