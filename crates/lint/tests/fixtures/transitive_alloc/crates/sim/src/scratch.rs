/// Allocates freely: this file carries no deny_alloc marker, so the
/// token rule stays quiet here.
pub fn expand(n: usize) -> f64 {
    let buf = vec![1.0f64; n];
    buf.iter().sum()
}
