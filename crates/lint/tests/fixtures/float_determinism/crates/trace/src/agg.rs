// Float-determinism fixture: a float reduction over a hash map's
// arbitrary iteration order (the seeded violation), next to the
// sanctioned ascending-index merge.

use std::collections::HashMap;

pub fn unordered_total(by_vm: &HashMap<u64, f64>) -> f64 {
    let mut total = 0.0;
    for v in by_vm.values() {
        total += v;
    }
    total
}

pub fn ordered_total(cols: &[f64]) -> f64 {
    let mut total = 0.0;
    for i in 0..cols.len() {
        total += cols[i];
    }
    total
}
