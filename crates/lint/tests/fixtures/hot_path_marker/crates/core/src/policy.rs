fn greedy(scores: &[f64]) -> usize {
    let mut best = 0;
    for (i, s) in scores.iter().enumerate() {
        if *s < scores[best] {
            best = i;
        }
    }
    best
}
