fn total(scores: &[f64]) -> f64 {
    let mut acc = 0.0;
    for s in scores {
        acc += s;
    }
    acc
}
