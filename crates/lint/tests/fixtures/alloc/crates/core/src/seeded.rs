// lint: deny_alloc

fn hot_kernel(n: usize) -> usize {
    let scratch = vec![0u8; n];
    scratch.len()
}
