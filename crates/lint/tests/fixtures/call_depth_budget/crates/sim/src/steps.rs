fn entry(x: u64) -> u64 { // lint: depth_budget(1)
    mid(x)
}

fn mid(x: u64) -> u64 {
    leaf(x)
}

fn leaf(x: u64) -> u64 {
    x + 1
}
