fn tidy(x: u64) -> u64 {
    // The escape hatch outlived the allocation it once excused.
    let y = x.rotate_left(1); // lint: allow(alloc)
    y ^ x
}
