// lint: deny_alloc

fn stage_cost(xs: &[f64]) -> f64 {
    megh_cli::util::risky_first(xs)
}
