/// The cli crate is outside the panic scope, so this unwrap is legal
/// here — but a hot-path caller must not inherit it.
pub fn risky_first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}
