fn forward(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    inspect(&a, &b);
}

fn inspect(_a: &Guard, _b: &Guard) {}
