fn reverse(s: &Shared) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    touch(&a, &b);
}

fn touch(_a: &Guard, _b: &Guard) {}
