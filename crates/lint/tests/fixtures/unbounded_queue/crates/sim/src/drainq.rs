fn drain_all(rx: &Receiver) -> u64 {
    let mut acc = 0;
    while let Ok(v) = rx.try_recv() {
        acc += v;
    }
    acc
}
