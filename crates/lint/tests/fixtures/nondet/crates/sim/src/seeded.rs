use std::collections::HashMap;

fn tally(keys: &[u32]) -> usize {
    let mut seen: HashMap<u32, usize> = HashMap::new();
    for k in keys {
        *seen.entry(*k).or_insert(0) += 1;
    }
    seen.len()
}
