fn guarded_wait(relay: &Relay, rx: &Receiver) -> u64 {
    let guard = relay.inner.lock();
    let extra = rx.recv();
    combine(&guard, extra)
}

fn combine(_guard: &Guard, extra: u64) -> u64 {
    extra
}
