// lint: deny_alloc

fn jitter(n: usize) -> f64 {
    megh_trace::noise::sample(n)
}
