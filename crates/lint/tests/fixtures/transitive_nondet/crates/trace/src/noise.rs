/// Trace tooling may use ambient entropy; the decision path may not
/// reach it, even indirectly.
pub fn sample(n: usize) -> f64 {
    let mut rng = rand::thread_rng();
    rand::Rng::gen_range(&mut rng, 0.0..n as f64)
}
