// Implicit-panic fixture: one index the interval engine cannot bound
// (the seeded violation) next to the guarded shape it proves safe.
// lint: deny_alloc

/// Sums the first `k` entries of `xs` — `k` is unrelated to
/// `xs.len()`, so `xs[i]` may panic.
pub fn partial_sum(xs: &[f64], k: usize) -> f64 {
    let mut acc = 0.0;
    for i in 0..k {
        acc += xs[i];
    }
    acc
}

/// The same loop bounded by the slice itself: every index discharges.
pub fn safe_sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..xs.len() {
        acc += xs[i];
    }
    acc
}
