fn pick(xs: &[f64]) -> f64 {
    let first = xs.first().unwrap();
    *first
}
