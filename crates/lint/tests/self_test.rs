//! Self-tests: every rule class must fire on a seeded violation and stay
//! quiet on annotated/exempt code, and the workspace at HEAD must be clean.

use lint::{scan_source, scan_workspace, Violation};

fn rules(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn alloc_rule_fires_in_deny_alloc_modules() {
    let src = "\
// lint: deny_alloc
fn hot() {
    let v = Vec::new();
    let w = vec![0.0; 4];
    let s = format!(\"x\");
}
";
    let found = scan_source("crates/core/src/seeded.rs", src);
    let alloc: Vec<_> = found.iter().filter(|v| v.rule == "alloc").collect();
    assert_eq!(alloc.len(), 3, "expected 3 alloc hits, got {found:?}");
    assert_eq!(alloc[0].line, 3);
}

#[test]
fn alloc_rule_silent_without_marker_and_with_escape() {
    let unmarked = "fn cold() { let v = Vec::new(); }\n";
    assert!(scan_source("crates/core/src/seeded.rs", unmarked)
        .iter()
        .all(|v| v.rule != "alloc"));

    let escaped = "\
// lint: deny_alloc
fn ctor() {
    // one-time construction, not on the decide path
    // lint: allow(alloc)
    let v = Vec::new();
    let w = vec![0.0; 4]; // lint: allow(alloc)
}
";
    assert!(
        scan_source("crates/core/src/seeded.rs", escaped)
            .iter()
            .all(|v| v.rule != "alloc"),
        "escape hatches must silence the rule"
    );
}

#[test]
fn nondet_rule_fires_in_decision_path_crates_only() {
    let src = "\
use std::collections::HashSet;
fn decide() {
    let t = std::time::Instant::now();
}
";
    let in_scope = scan_source("crates/baselines/src/seeded.rs", src);
    assert!(rules(&in_scope).contains(&"nondet"), "{in_scope:?}");
    assert_eq!(
        in_scope.iter().filter(|v| v.rule == "nondet").count(),
        2,
        "HashSet import + Instant::now"
    );

    // trace ingestion is outside the decision path.
    let out_of_scope = scan_source("crates/trace/src/seeded.rs", src);
    assert!(rules(&out_of_scope).iter().all(|r| *r != "nondet"));
}

#[test]
fn panic_rule_fires_on_each_token_class() {
    let src = "\
fn lib_code(x: Option<f64>, ys: &mut [f64]) -> f64 {
    ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let v = x.expect(\"present\");
    if v < 0.0 {
        panic!(\"negative\");
    }
    v
}
";
    let found = scan_source("crates/sim/src/seeded.rs", src);
    let panics = found.iter().filter(|v| v.rule == "panic").count();
    // line 2 carries both partial_cmp and unwrap.
    assert_eq!(panics, 4, "{found:?}");
}

#[test]
fn panic_rule_skips_test_modules_and_annotated_lines() {
    let src = "\
fn lib_code() {
    // measured fallback is unreachable: the caller checks emptiness
    // lint: allow(panic)
    let v = Some(1).unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helper() {
        let v: Option<u32> = None;
        assert!(v.is_none());
        Some(5).unwrap();
        [0.1f64, 0.2].sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
";
    let found = scan_source("crates/sim/src/seeded.rs", src);
    assert!(
        found.iter().all(|v| v.rule != "panic"),
        "test modules and annotated lines are exempt: {found:?}"
    );
}

#[test]
fn doc_rule_requires_doc_comments_on_pub_fns() {
    let src = "\
pub fn bare() {}

/// Documented.
pub fn documented() {}

/// Attributes between the doc and the fn are fine.
#[inline]
pub fn attributed() {}

fn private_needs_no_doc() {}
";
    let found = scan_source("crates/linalg/src/seeded.rs", src);
    let docs: Vec<_> = found.iter().filter(|v| v.rule == "missing_docs").collect();
    assert_eq!(docs.len(), 1, "{found:?}");
    assert_eq!(docs[0].line, 1);

    // Out of scope: baselines pub fns are not held to the doc rule.
    let other = scan_source("crates/baselines/src/seeded.rs", src);
    assert!(rules(&other).iter().all(|r| *r != "missing_docs"));
}

#[test]
fn unsafe_rule_fires_everywhere_unless_allowlisted() {
    let src = "\
pub fn raw(p: *const u8) -> u8 {
    unsafe { *p }
}
";
    let found = scan_source("crates/trace/src/seeded.rs", src);
    assert!(rules(&found).contains(&"unsafe_code"), "{found:?}");

    let allow = "\
// SAFETY: delegates to the system allocator.
// lint: allow(unsafe_code)
unsafe impl Sync for Wrapper {}
";
    let found = scan_source("crates/trace/src/seeded.rs", allow);
    assert!(rules(&found).iter().all(|r| *r != "unsafe_code"));
}

#[test]
fn tokens_inside_strings_and_comments_do_not_fire() {
    let src = "\
fn lib_code() {
    let msg = \"call .unwrap() on HashSet via Instant::now\";
    // .unwrap() and HashSet discussed in a comment only
    let raw = r#\"panic! vec! format!\"#;
    let _ = (msg, raw);
}
";
    let found = scan_source("crates/sim/src/seeded.rs", src);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn hot_path_marker_rule_requires_deny_alloc_on_listed_files() {
    let unmarked = "fn kernel() {}\n";
    for file in lint::HOT_PATH_FILES {
        let found = scan_source(file, unmarked);
        assert!(
            rules(&found).contains(&"hot_path_marker"),
            "{file} without a marker must be flagged: {found:?}"
        );
    }

    // The marker satisfies the rule (and arms the alloc rule).
    let marked = "// lint: deny_alloc\nfn kernel() {}\n";
    let found = scan_source("crates/linalg/src/csr.rs", marked);
    assert!(rules(&found).iter().all(|r| *r != "hot_path_marker"));

    // Unlisted files may skip the marker freely.
    let found = scan_source("crates/linalg/src/stats.rs", unmarked);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn nondet_rule_flags_free_thread_spawn_but_not_scoped_spawn() {
    let free = "\
fn fan_out() {
    let h = std::thread::spawn(|| 1);
}
";
    let found = scan_source("crates/sim/src/seeded.rs", free);
    assert!(rules(&found).contains(&"nondet"), "{found:?}");

    // Scoped spawns merged in seed order are the sanctioned pattern.
    let scoped = "\
fn fan_out() {
    std::thread::scope(|scope| {
        scope.spawn(|| 1);
    });
}
";
    let found = scan_source("crates/sim/src/seeded.rs", scoped);
    assert!(
        rules(&found).iter().all(|r| *r != "nondet"),
        "scope.spawn must stay legal: {found:?}"
    );
}

#[test]
fn workspace_at_head_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = scan_workspace(&root).expect("workspace must be readable");
    assert!(
        violations.is_empty(),
        "lint must pass on the committed tree:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
