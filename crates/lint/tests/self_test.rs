//! Self-tests: every rule class must fire on a seeded violation and stay
//! quiet on annotated/exempt code, and the workspace at HEAD must be clean.

use lint::{analyze_sources, scan_source, scan_workspace, Violation};

fn rules(violations: &[Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

#[test]
fn alloc_rule_fires_in_deny_alloc_modules() {
    let src = "\
// lint: deny_alloc
fn hot() {
    let v = Vec::new();
    let w = vec![0.0; 4];
    let s = format!(\"x\");
}
";
    let found = scan_source("crates/core/src/seeded.rs", src);
    let alloc: Vec<_> = found.iter().filter(|v| v.rule == "alloc").collect();
    assert_eq!(alloc.len(), 3, "expected 3 alloc hits, got {found:?}");
    assert_eq!(alloc[0].line, 3);
}

#[test]
fn alloc_rule_silent_without_marker_and_with_escape() {
    let unmarked = "fn cold() { let v = Vec::new(); }\n";
    assert!(scan_source("crates/core/src/seeded.rs", unmarked)
        .iter()
        .all(|v| v.rule != "alloc"));

    let escaped = "\
// lint: deny_alloc
fn ctor() {
    // one-time construction, not on the decide path
    // lint: allow(alloc)
    let v = Vec::new();
    let w = vec![0.0; 4]; // lint: allow(alloc)
}
";
    assert!(
        scan_source("crates/core/src/seeded.rs", escaped)
            .iter()
            .all(|v| v.rule != "alloc"),
        "escape hatches must silence the rule"
    );
}

#[test]
fn nondet_rule_fires_in_decision_path_crates_only() {
    let src = "\
use std::collections::HashSet;
fn decide() {
    let t = std::time::Instant::now();
}
";
    let in_scope = scan_source("crates/baselines/src/seeded.rs", src);
    assert!(rules(&in_scope).contains(&"nondet"), "{in_scope:?}");
    assert_eq!(
        in_scope.iter().filter(|v| v.rule == "nondet").count(),
        2,
        "HashSet import + Instant::now"
    );

    // trace ingestion is outside the decision path.
    let out_of_scope = scan_source("crates/trace/src/seeded.rs", src);
    assert!(rules(&out_of_scope).iter().all(|r| *r != "nondet"));
}

#[test]
fn panic_rule_fires_on_each_token_class() {
    let src = "\
fn lib_code(x: Option<f64>, ys: &mut [f64]) -> f64 {
    ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let v = x.expect(\"present\");
    if v < 0.0 {
        panic!(\"negative\");
    }
    v
}
";
    let found = scan_source("crates/sim/src/seeded.rs", src);
    let panics = found.iter().filter(|v| v.rule == "panic").count();
    // line 2 carries both partial_cmp and unwrap.
    assert_eq!(panics, 4, "{found:?}");
}

#[test]
fn panic_rule_skips_test_modules_and_annotated_lines() {
    let src = "\
fn lib_code() {
    // measured fallback is unreachable: the caller checks emptiness
    // lint: allow(panic)
    let v = Some(1).unwrap();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_helper() {
        let v: Option<u32> = None;
        assert!(v.is_none());
        Some(5).unwrap();
        [0.1f64, 0.2].sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
";
    let found = scan_source("crates/sim/src/seeded.rs", src);
    assert!(
        found.iter().all(|v| v.rule != "panic"),
        "test modules and annotated lines are exempt: {found:?}"
    );
}

#[test]
fn doc_rule_requires_doc_comments_on_pub_fns() {
    let src = "\
pub fn bare() {}

/// Documented.
pub fn documented() {}

/// Attributes between the doc and the fn are fine.
#[inline]
pub fn attributed() {}

fn private_needs_no_doc() {}
";
    let found = scan_source("crates/linalg/src/seeded.rs", src);
    let docs: Vec<_> = found.iter().filter(|v| v.rule == "missing_docs").collect();
    assert_eq!(docs.len(), 1, "{found:?}");
    assert_eq!(docs[0].line, 1);

    // Out of scope: baselines pub fns are not held to the doc rule.
    let other = scan_source("crates/baselines/src/seeded.rs", src);
    assert!(rules(&other).iter().all(|r| *r != "missing_docs"));
}

#[test]
fn unsafe_rule_fires_everywhere_unless_allowlisted() {
    let src = "\
pub fn raw(p: *const u8) -> u8 {
    unsafe { *p }
}
";
    let found = scan_source("crates/trace/src/seeded.rs", src);
    assert!(rules(&found).contains(&"unsafe_code"), "{found:?}");

    let allow = "\
// SAFETY: delegates to the system allocator.
// lint: allow(unsafe_code)
unsafe impl Sync for Wrapper {}
";
    let found = scan_source("crates/trace/src/seeded.rs", allow);
    assert!(rules(&found).iter().all(|r| *r != "unsafe_code"));
}

#[test]
fn tokens_inside_strings_and_comments_do_not_fire() {
    let src = "\
fn lib_code() {
    let msg = \"call .unwrap() on HashSet via Instant::now\";
    // .unwrap() and HashSet discussed in a comment only
    let raw = r#\"panic! vec! format!\"#;
    let _ = (msg, raw);
}
";
    let found = scan_source("crates/sim/src/seeded.rs", src);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn hot_path_marker_rule_requires_deny_alloc_on_listed_files() {
    let unmarked = "fn kernel() {}\n";
    for file in lint::HOT_PATH_FILES {
        let found = scan_source(file, unmarked);
        assert!(
            rules(&found).contains(&"hot_path_marker"),
            "{file} without a marker must be flagged: {found:?}"
        );
    }

    // The marker satisfies the rule (and arms the alloc rule).
    let marked = "// lint: deny_alloc\nfn kernel() {}\n";
    let found = scan_source("crates/linalg/src/csr.rs", marked);
    assert!(rules(&found).iter().all(|r| *r != "hot_path_marker"));

    // Unlisted files may skip the marker freely.
    let found = scan_source("crates/linalg/src/stats.rs", unmarked);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn nondet_rule_flags_free_thread_spawn_but_not_scoped_spawn() {
    let free = "\
fn fan_out() {
    let h = std::thread::spawn(|| 1);
}
";
    let found = scan_source("crates/sim/src/seeded.rs", free);
    assert!(rules(&found).contains(&"nondet"), "{found:?}");

    // Scoped spawns merged in seed order are the sanctioned pattern.
    let scoped = "\
fn fan_out() {
    std::thread::scope(|scope| {
        scope.spawn(|| 1);
    });
}
";
    let found = scan_source("crates/sim/src/seeded.rs", scoped);
    assert!(
        rules(&found).iter().all(|r| *r != "nondet"),
        "scope.spawn must stay legal: {found:?}"
    );
}

#[test]
fn transitive_alloc_crosses_file_boundaries() {
    // The marked hot fn allocates nothing directly; the helper it calls
    // lives in an *unmarked* file where the token rule never fires.
    let hot = "\
// lint: deny_alloc
pub struct Agent;
impl Agent {
    /// Hot entry point.
    pub fn decide(&self, n: usize) -> f64 {
        megh_sim::helper::expand(n)
    }
}
";
    let helper = "\
/// Builds a scratch buffer (fine here: this file is not deny_alloc).
pub fn expand(n: usize) -> f64 {
    let buf = vec![0.0f64; n];
    buf.iter().sum()
}
";
    let analysis = analyze_sources(&[
        ("crates/core/src/hot.rs".to_string(), hot.to_string()),
        ("crates/sim/src/helper.rs".to_string(), helper.to_string()),
    ]);
    let transitive: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.rule == "transitive_alloc")
        .collect();
    assert_eq!(transitive.len(), 1, "{:?}", analysis.violations);
    assert_eq!(transitive[0].file, "crates/core/src/hot.rs");
    assert!(
        transitive[0].message.contains("expand")
            && transitive[0].message.contains("crates/sim/src/helper.rs"),
        "witness must name the cross-file culprit: {}",
        transitive[0].message
    );

    // An explicit vouch on the signature line silences it and is live.
    let vouched = hot.replace(
        "    pub fn decide(&self, n: usize) -> f64 {",
        "    // lint: allow(transitive_alloc)\n    pub fn decide(&self, n: usize) -> f64 {",
    );
    let analysis = analyze_sources(&[
        ("crates/core/src/hot.rs".to_string(), vouched),
        ("crates/sim/src/helper.rs".to_string(), helper.to_string()),
    ]);
    assert!(
        analysis.violations.is_empty(),
        "vouched subtree must be clean and the allow live: {:?}",
        analysis.violations
    );
}

#[test]
fn dead_allow_is_reported_and_removal_is_clean() {
    let stale = "\
fn fine() {
    let x = 1 + 1; // lint: allow(alloc)
    let _ = x;
}
";
    let analysis = analyze_sources(&[("crates/sim/src/seeded.rs".to_string(), stale.to_string())]);
    let dead: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.rule == "dead_allow")
        .collect();
    assert_eq!(dead.len(), 1, "{:?}", analysis.violations);
    assert_eq!(dead[0].line, 2);

    // A directive that suppresses a real token is live, not dead.
    let live = "\
// lint: deny_alloc
fn ctor() {
    let v = Vec::new(); // lint: allow(alloc)
    let _ = v;
}
";
    let analysis = analyze_sources(&[("crates/core/src/seeded.rs".to_string(), live.to_string())]);
    assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
    assert_eq!(analysis.report.allows.len(), 1);
    assert!(analysis.report.allows[0].live);
}

#[test]
fn report_tabulates_hot_functions_and_is_deterministic() {
    let hot = "\
// lint: deny_alloc
/// Doc.
pub fn kernel(n: usize) -> usize {
    scratch(n)
}

/// Doc.
pub fn scratch(n: usize) -> usize {
    let v = vec![0u8; n]; // lint: allow(alloc)
    v.len()
}
";
    let sources = vec![("crates/linalg/src/csr.rs".to_string(), hot.to_string())];
    let a = analyze_sources(&sources);
    let b = analyze_sources(&sources);
    assert_eq!(
        serde_json::to_string(&a.report).unwrap(),
        serde_json::to_string(&b.report).unwrap(),
        "report bytes must be reproducible"
    );
    assert_eq!(a.report.stats.hot_functions, 2);
    let kernel = a
        .report
        .functions
        .iter()
        .find(|f| f.function == "kernel")
        .expect("kernel row");
    // The allowed vec! is vetted: no fact, so no transitive taint either.
    assert!(!kernel.direct_alloc && !kernel.transitive_alloc);
}

#[test]
fn guard_across_blocking_fires_and_vouch_silences() {
    let src = "\
fn guarded_wait(relay: &Relay, rx: &Receiver) -> u64 {
    let guard = relay.inner.lock();
    let extra = rx.recv();
    combine(&guard, extra)
}

fn combine(_guard: &Guard, extra: u64) -> u64 {
    extra
}
";
    let analysis = analyze_sources(&[("crates/sim/src/relay.rs".to_string(), src.to_string())]);
    let hits: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.rule == "guard_across_blocking")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", analysis.violations);
    assert_eq!(hits[0].line, 2, "anchored at the acquisition site");
    assert!(
        hits[0].message.contains("recv"),
        "witness must name the blocking op: {}",
        hits[0].message
    );

    // A vouch at the acquisition site silences the rule and stays live.
    let vouched = src.replace(
        "    let guard = relay.inner.lock();",
        "    // bounded: peer acks within one poll tick. lint: allow(guard_across_blocking)\n    \
         let guard = relay.inner.lock();",
    );
    let analysis = analyze_sources(&[("crates/sim/src/relay.rs".to_string(), vouched)]);
    assert!(
        analysis.violations.is_empty(),
        "vouched guard must be clean and the allow live: {:?}",
        analysis.violations
    );
}

#[test]
fn guard_rule_ignores_momentary_guards() {
    // Derived values and match scrutinees drop the guard immediately;
    // holding nothing across the recv is the sanctioned serve pattern.
    let src = "\
fn poll(relay: &Relay, rx: &Receiver) -> u64 {
    let len = relay.inner.lock().len();
    let extra = rx.recv();
    len as u64 + extra
}
";
    let analysis = analyze_sources(&[("crates/sim/src/relay.rs".to_string(), src.to_string())]);
    assert!(
        analysis
            .violations
            .iter()
            .all(|v| v.rule != "guard_across_blocking"),
        "{:?}",
        analysis.violations
    );
}

#[test]
fn lock_order_cycle_detected_across_files() {
    let fwd = "\
fn forward(s: &Shared) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    inspect(&a, &b);
}
";
    let rev = "\
fn reverse(s: &Shared) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    touch(&a, &b);
}
";
    let analysis = analyze_sources(&[
        ("crates/sim/src/fwd.rs".to_string(), fwd.to_string()),
        ("crates/core/src/rev.rs".to_string(), rev.to_string()),
    ]);
    let cycles: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.rule == "lock_order")
        .collect();
    assert_eq!(cycles.len(), 1, "{:?}", analysis.violations);
    assert!(
        cycles[0].message.contains("alpha") && cycles[0].message.contains("beta"),
        "cycle finding must name both locks: {}",
        cycles[0].message
    );
    // The report section carries the full acquisition-order graph.
    let lo = analysis
        .report
        .lock_order
        .as_ref()
        .expect("lock-order section");
    assert_eq!(lo.cycles.len(), 1);
    assert!(
        lo.edges.len() >= 2,
        "both orderings recorded: {:?}",
        lo.edges
    );

    // Consistent ordering in both files: edges recorded, no cycle.
    let consistent = analyze_sources(&[
        ("crates/sim/src/fwd.rs".to_string(), fwd.to_string()),
        (
            "crates/core/src/rev.rs".to_string(),
            fwd.replace("forward", "also_forward"),
        ),
    ]);
    assert!(
        consistent.violations.iter().all(|v| v.rule != "lock_order"),
        "{:?}",
        consistent.violations
    );
}

#[test]
fn unbounded_queue_fires_and_bounded_drain_is_clean() {
    let unbounded = "\
fn drain_all(rx: &Receiver) -> u64 {
    let mut acc = 0;
    while let Ok(v) = rx.try_recv() {
        acc += v;
    }
    acc
}
";
    let analysis = analyze_sources(&[(
        "crates/sim/src/drainq.rs".to_string(),
        unbounded.to_string(),
    )]);
    let hits: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.rule == "unbounded_queue")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", analysis.violations);
    assert_eq!(hits[0].line, 3);

    // serve's writer shape: the drain loop is capped by a batch bound.
    let bounded = "\
fn drain_batch(rx: &Receiver) -> u64 {
    let mut acc = 0;
    let mut n = 0;
    while n < 256 {
        match rx.try_recv() {
            Ok(v) => acc += v,
            Err(_) => break,
        }
        n += 1;
    }
    acc
}
";
    let analysis =
        analyze_sources(&[("crates/sim/src/drainq.rs".to_string(), bounded.to_string())]);
    assert!(
        analysis
            .violations
            .iter()
            .all(|v| v.rule != "unbounded_queue"),
        "bounded drains are the sanctioned pattern: {:?}",
        analysis.violations
    );
}

#[test]
fn call_depth_budget_enforced_from_inline_directive() {
    let src = "\
fn entry(x: u64) -> u64 { // lint: depth_budget(1)
    mid(x)
}

fn mid(x: u64) -> u64 {
    leaf(x)
}

fn leaf(x: u64) -> u64 {
    x + 1
}
";
    let analysis = analyze_sources(&[("crates/sim/src/steps.rs".to_string(), src.to_string())]);
    let hits: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.rule == "call_depth_budget")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", analysis.violations);
    assert_eq!(hits[0].line, 1, "anchored at the budgeted signature");

    // A budget that covers the measured depth is clean, and the report
    // row records the measurement either way.
    let roomy = src.replace("depth_budget(1)", "depth_budget(2)");
    let analysis = analyze_sources(&[("crates/sim/src/steps.rs".to_string(), roomy)]);
    assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
    let rows = analysis.report.depth_budgets.as_deref().unwrap_or(&[]);
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].budget, 2);
    assert_eq!(rows[0].depth, Some(2));
}

#[test]
fn call_depth_budget_flags_unbounded_recursion() {
    // A cycle under a budgeted fn has no finite longest path: the
    // measurement comes back None and the budget can never hold.
    let src = "\
fn entry(x: u64) -> u64 { // lint: depth_budget(8)
    spin(x)
}

fn spin(x: u64) -> u64 {
    if x == 0 { 0 } else { spin(x - 1) }
}
";
    let analysis = analyze_sources(&[("crates/sim/src/steps.rs".to_string(), src.to_string())]);
    let hits: Vec<_> = analysis
        .violations
        .iter()
        .filter(|v| v.rule == "call_depth_budget")
        .collect();
    assert_eq!(hits.len(), 1, "{:?}", analysis.violations);
    let rows = analysis.report.depth_budgets.as_deref().unwrap_or(&[]);
    assert_eq!(rows[0].depth, None, "recursion must poison the measurement");
}

#[test]
fn fix_deletes_dead_allows_and_is_idempotent() {
    let stale = "\
fn fine() {
    let x = 1 + 1; // lint: allow(alloc)
    let _ = x;
}

// lint: allow(panic) — stale vouch from a removed helper
fn also_fine() {}

// lint: deny_alloc
fn ctor() {
    let v = Vec::new(); // lint:allow( alloc ,panic )
    let _ = v;
}
";
    let sources = vec![("crates/sim/src/seeded.rs".to_string(), stale.to_string())];
    let fixed = lint::fix_sources(&sources);
    assert_eq!(fixed.len(), 1, "one file rewritten");
    let text = &fixed[0].1;
    // Dead inline allow gone, dead standalone line gone with its reason,
    // live directive canonicalized with its dead name dropped.
    assert!(text.contains("let x = 1 + 1;\n"), "{text}");
    assert!(!text.contains("stale vouch"), "{text}");
    assert!(
        text.contains("let v = Vec::new(); // lint: allow(alloc)\n"),
        "{text}"
    );

    // Idempotence: fixing the fixed text changes nothing.
    let again = lint::fix_sources(&[(fixed[0].0.clone(), text.clone())]);
    assert!(again.is_empty(), "second --fix must be a no-op: {again:?}");

    // And the fixed tree is clean under the analyzer.
    let analysis = analyze_sources(&[(fixed[0].0.clone(), text.clone())]);
    assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
}

#[test]
fn fix_root_is_idempotent_on_a_fixture_tree() {
    // Copy the dead_allow fixture into a scratch tree, fix it on disk
    // twice, and require the second pass to change zero bytes.
    let fixture =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/dead_allow");
    let scratch = std::env::temp_dir().join(format!("lint_fix_idem_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut stack = vec![fixture.clone()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("fixture readable") {
            let entry = entry.expect("entry");
            let path = entry.path();
            let rel = path.strip_prefix(&fixture).expect("under fixture");
            if path.is_dir() {
                stack.push(path.clone());
            } else {
                let dst = scratch.join(rel);
                std::fs::create_dir_all(dst.parent().expect("parent")).expect("mkdir");
                std::fs::copy(&path, &dst).expect("copy");
            }
        }
    }
    let first = lint::fix_root(&scratch, false).expect("fix must succeed");
    assert!(
        !first.is_empty(),
        "the fixture seeds a dead allow to delete"
    );
    let snapshot: Vec<(String, String)> = first
        .iter()
        .map(|rel| {
            (
                rel.clone(),
                std::fs::read_to_string(scratch.join(rel)).expect("fixed file"),
            )
        })
        .collect();
    let second = lint::fix_root(&scratch, false).expect("fix must succeed");
    assert!(
        second.is_empty(),
        "second on-disk --fix must be a no-op: {second:?}"
    );
    for (rel, before) in &snapshot {
        let after = std::fs::read_to_string(scratch.join(rel)).expect("fixed file");
        assert_eq!(&after, before, "{rel} changed bytes on the second pass");
    }
    // --check mode reports nothing left to do and touches nothing.
    let check = lint::fix_root(&scratch, true).expect("check must succeed");
    assert!(check.is_empty(), "{check:?}");
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn workspace_at_head_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let started = std::time::Instant::now();
    let violations = scan_workspace(&root).expect("workspace must be readable");
    let elapsed = started.elapsed();
    assert!(
        violations.is_empty(),
        "lint must pass on the committed tree:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // ISSUE acceptance: the full workspace scan (lex + parse + graph +
    // fixpoint) stays interactive even on a 1-CPU container.
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "workspace scan took {elapsed:?}, budget is 5s"
    );
}

#[test]
fn committed_lint_report_matches_head() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = lint::analyze_root(&root).expect("workspace must be readable");
    let committed = std::fs::read_to_string(root.join(lint::REPORT_FILE))
        .expect("LINT_REPORT.json must be committed (run `cargo run -p lint -- --report`)");
    let committed: lint::LintReport =
        serde_json::from_str(&committed).expect("committed report must parse");
    let diff = lint::diff_reports(&committed, &analysis.report);
    assert!(
        diff.fatal.is_empty(),
        "HEAD regressed against the committed lint snapshot:\n{}",
        lint::render_diff(&diff)
    );
}
