//! Golden-fixture corpus: every rule class has a directory under
//! `tests/fixtures/` seeding exactly the violations its `expected.txt`
//! lists. Fixture sources mirror workspace-relative paths (so scope
//! decisions apply as in the real tree) and include a transitive-alloc
//! case spanning two files.

use std::fs;
use std::path::{Path, PathBuf};

fn collect_rs(dir: &Path, base: &Path, out: &mut Vec<(String, String)>) {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .expect("fixture dir must be readable")
        .map(|e| e.expect("fixture entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, base, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(base)
                .expect("fixture path under its case dir")
                .to_string_lossy()
                .replace('\\', "/");
            let source = fs::read_to_string(&path).expect("fixture source");
            out.push((rel, source));
        }
    }
}

#[test]
fn golden_fixtures_match_expected() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut cases: Vec<PathBuf> = fs::read_dir(&root)
        .expect("fixtures dir must exist")
        .map(|e| e.expect("fixture entry").path())
        .filter(|p| p.is_dir())
        .collect();
    cases.sort();
    // One case per rule class keeps the corpus honest: a new rule
    // without a fixture shows up here as a count mismatch.
    assert_eq!(
        cases.len(),
        lint::RULES.len(),
        "expected one fixture case per rule class"
    );

    for case in cases {
        let mut sources = Vec::new();
        collect_rs(&case, &case, &mut sources);
        assert!(!sources.is_empty(), "{} has no sources", case.display());

        let analysis = lint::analyze_sources(&sources);
        let got: Vec<String> = analysis
            .violations
            .iter()
            .map(|v| format!("{}:{}: [{}]", v.file, v.line, v.rule))
            .collect();

        let expected: Vec<String> = fs::read_to_string(case.join("expected.txt"))
            .unwrap_or_else(|_| panic!("{} needs an expected.txt", case.display()))
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(str::to_string)
            .collect();

        assert_eq!(
            got,
            expected,
            "fixture `{}` violations diverged (full: {:#?})",
            case.display(),
            analysis.violations
        );

        // Each case is named for the rule it seeds, and must seed it.
        let rule = case.file_name().unwrap().to_string_lossy().to_string();
        assert!(
            analysis.violations.iter().any(|v| v.rule == rule),
            "fixture `{rule}` never fired its own rule"
        );
    }
}
