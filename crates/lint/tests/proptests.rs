//! Property tests for the lexer and the item parser / call-graph pass.
//!
//! Two families: the lexer must be total (never panic, preserve line
//! structure) over arbitrary input, and a generated call chain rendered
//! to source must round-trip through the parser into exactly the
//! expected function table and transitive-violation set.

use proptest::prelude::*;

/// Character palette biased toward the lexer's tricky state machine:
/// comment markers, string/char/raw-string delimiters, escapes, and
/// enough identifier material to form tokens across them.
const PALETTE: &[char] = &[
    '/', '*', '"', '\'', '\\', 'r', '#', '!', 'a', 'Z', '_', '0', '9', '(', ')', '{', '}', '<',
    '>', ':', '.', ',', ';', ' ', '\n', 'é', '∂',
];

proptest! {
    /// The lexer is total: any palette string lexes without panicking
    /// and yields one `LexedLine` per physical line. `scan_source` is
    /// exercised on the same input so directive parsing, the item
    /// parser, and the token pass are total too (violations may or may
    /// not fire — the property is only that nothing crashes or loses
    /// lines).
    #[test]
    fn lexer_is_total_and_preserves_line_count(
        picks in prop::collection::vec(0usize..27, 0..200),
        tail in (0usize..2).prop_map(|b| b == 1),
    ) {
        let mut src: String = picks.iter().map(|&i| PALETTE[i]).collect();
        if tail {
            src.push_str("\nfn f() {}\n");
        }
        // An unterminated string/comment swallows later newlines into
        // its own mode but never drops the physical line boundary.
        let expected_lines = src.chars().filter(|c| *c == '\n').count() + 1;
        let _ = lint::scan_source("crates/sim/src/gen.rs", &src);
        prop_assert_eq!(lint::lexed_line_count(&src), expected_lines);
    }

    /// Round-trip: render a linear call chain `f0 -> f1 -> ... -> fK`
    /// where only the last function allocates, as free fns or as
    /// methods on a struct. The parser must recover every function
    /// (the report's hot-function table is the observable), the direct
    /// `alloc` violation lands on the allocator, and every other link
    /// in the chain is flagged transitively.
    #[test]
    fn generated_call_chain_round_trips(
        len in 2usize..7,
        methods in (0usize..2).prop_map(|b| b == 1),
    ) {
        let mut src = String::from("// lint: deny_alloc\n");
        if methods {
            src.push_str("pub struct Chain;\n\nimpl Chain {\n");
            for i in 0..len {
                src.push_str(&format!("    /// Link {i}.\n    pub fn f{i}(&self, n: usize) -> usize {{\n"));
                if i + 1 < len {
                    src.push_str(&format!("        self.f{}(n)\n    }}\n", i + 1));
                } else {
                    src.push_str("        let v = vec![0u8; n];\n        v.len()\n    }\n");
                }
            }
            src.push_str("}\n");
        } else {
            for i in 0..len {
                src.push_str(&format!("/// Link {i}.\npub fn f{i}(n: usize) -> usize {{\n"));
                if i + 1 < len {
                    src.push_str(&format!("    f{}(n)\n}}\n", i + 1));
                } else {
                    src.push_str("    let v = vec![0u8; n];\n    v.len()\n}\n");
                }
            }
        }

        let analysis = lint::analyze_sources(&[(
            "crates/core/src/chain.rs".to_string(),
            src,
        )]);

        // Parser recovery: one hot-function row per generated fn, with
        // the expected qualified names.
        prop_assert_eq!(analysis.report.functions.len(), len);
        for (i, entry) in analysis.report.functions.iter().enumerate() {
            let expected = if methods { format!("Chain::f{i}") } else { format!("f{i}") };
            prop_assert_eq!(&entry.function, &expected);
            // Every link reaches the allocator transitively.
            prop_assert!(entry.transitive_alloc, "f{} lost the taint", i);
            prop_assert_eq!(entry.direct_alloc, i + 1 == len);
        }

        let direct = analysis.violations.iter().filter(|v| v.rule == "alloc").count();
        let transitive = analysis
            .violations
            .iter()
            .filter(|v| v.rule == "transitive_alloc")
            .count();
        prop_assert_eq!(direct, 1);
        prop_assert_eq!(transitive, len - 1);
    }

    /// Interval soundness: a random straight-line program over `+`,
    /// `-`, `*` is rendered to source, executed concretely, and every
    /// final variable value must land inside the interval
    /// [`lint::infer_intervals`] reports for it. Concrete execution is
    /// the ground truth the abstract domain must over-approximate.
    #[test]
    fn inferred_intervals_contain_concrete_execution(
        stmts in prop::collection::vec(
            (0usize..4, 0i64..21, 0usize..8, 0usize..8, 0usize..3),
            1..8,
        ),
    ) {
        let mut src = String::from("fn f() {\n");
        let mut vals: Vec<i128> = Vec::new();
        for (i, &(kind, c, x, y, op)) in stmts.iter().enumerate() {
            let c = i128::from(c);
            let kind = if i == 0 { 0 } else { kind };
            let (sym, apply): (char, fn(i128, i128) -> i128) = match op {
                0 => ('+', |a, b| a.saturating_add(b)),
                1 => ('-', |a, b| a.saturating_sub(b)),
                _ => ('*', |a, b| a.saturating_mul(b)),
            };
            let (expr, val) = match kind {
                0 => (format!("{c}"), c),
                1 => {
                    let x = x % i;
                    (format!("a{x}"), vals[x])
                }
                2 => {
                    let x = x % i;
                    (format!("a{x} {sym} {c}"), apply(vals[x], c))
                }
                _ => {
                    let (x, y) = (x % i, y % i);
                    (format!("a{x} {sym} a{y}"), apply(vals[x], vals[y]))
                }
            };
            src.push_str(&format!("    let a{i} = {expr};\n"));
            vals.push(val);
        }
        src.push_str("}\n");

        let intervals = lint::infer_intervals(&src);
        for (i, &val) in vals.iter().enumerate() {
            let name = format!("a{i}");
            let (lo, hi) = intervals
                .get(&name)
                .copied()
                .unwrap_or_else(|| panic!("no interval for {name} in\n{src}"));
            // Bounds at the domain's infinity sentinels (`i128::MIN/4`,
            // `i128::MAX/4` — see `intervals.rs`) mean "unbounded";
            // concrete saturation can only overshoot a sentinel when the
            // true value already left the finite range on that side.
            let lo_ok = lo <= i128::MIN / 4 || lo <= val;
            let hi_ok = hi >= i128::MAX / 4 || val <= hi;
            prop_assert!(
                lo_ok && hi_ok,
                "{name} = {val} outside [{lo}, {hi}] for\n{src}"
            );
        }
    }
}
