//! Golden SARIF log: the two interval-engine fixture corpora are
//! analyzed together and the emitted SARIF 2.1.0 log must match the
//! committed `tests/golden/lint.sarif` byte for byte — pinning key
//! order, indentation, escaping, rule-table order, and location
//! rendering. Regenerate deliberately with
//! `UPDATE_GOLDEN=1 cargo test -p lint --test sarif_golden`.

use std::fs;
use std::path::Path;

fn collect_rs(dir: &Path, base: &Path, out: &mut Vec<(String, String)>) {
    let mut entries: Vec<_> = fs::read_dir(dir)
        .expect("fixture dir must be readable")
        .map(|e| e.expect("fixture entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, base, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(base)
                .expect("fixture path under its case dir")
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&path).expect("fixture source")));
        }
    }
}

#[test]
fn sarif_log_matches_golden_bytes() {
    let tests = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests");
    let mut sources = Vec::new();
    for case in ["implicit_panic", "float_determinism"] {
        let dir = tests.join("fixtures").join(case);
        collect_rs(&dir, &dir, &mut sources);
    }
    sources.sort();
    let analysis = lint::analyze_sources(&sources);
    assert!(
        !analysis.violations.is_empty(),
        "fixture corpus must seed violations for the golden log"
    );
    let log = lint::to_sarif(&analysis.violations);

    let golden_path = tests.join("golden/lint.sarif");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        fs::write(&golden_path, &log).unwrap();
        return;
    }
    let golden = fs::read_to_string(&golden_path)
        .expect("committed golden log (regenerate with UPDATE_GOLDEN=1)");
    assert_eq!(
        log, golden,
        "SARIF bytes diverged from tests/golden/lint.sarif; if the change \
         is deliberate, regenerate with UPDATE_GOLDEN=1"
    );

    // Round-trip: the bytes are valid JSON carrying the same results.
    let parsed: serde_json::Value = serde_json::from_str(&log).expect("valid JSON");
    let results = parsed["runs"][0]["results"]
        .as_array()
        .expect("results array");
    assert_eq!(results.len(), analysis.violations.len());
    for (result, v) in results.iter().zip(&analysis.violations) {
        assert_eq!(result["ruleId"].as_str(), Some(v.rule));
        assert_eq!(
            result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"].as_str(),
            Some(v.file.as_str())
        );
        assert_eq!(
            result["locations"][0]["physicalLocation"]["region"]["startLine"].as_u64(),
            Some(v.line as u64)
        );
    }
}
