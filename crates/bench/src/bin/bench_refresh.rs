//! `bench_refresh` — refresh a tracked bench series snapshot from
//! **fresh-process repetitions** of a Criterion-shim bench.
//!
//! Usage:
//!   cargo run --release -p megh-bench --bin bench_refresh -- \
//!       [--snapshot LABEL] [--bench decision_latency] [--group decide] \
//!       [--out BENCH_decision_latency.json] [--reps 5]
//!
//! A single bench process produces quartiles over its *own* iteration
//! samples — within-run spread, which understates how much a median
//! moves between invocations (CPU frequency state, page placement,
//! cache colouring are all fixed for the process lifetime). This tool
//! runs the bench `--reps` times, **each in a fresh process** (`cargo
//! bench` with a per-repetition `BENCH_JSON_DIR`), and aggregates
//! *between-run* statistics: each repetition contributes its per-probe
//! median, and the snapshot's `median_ns`/`p25_ns`/`p75_ns` are taken
//! over those repetition medians. `bench-diff`'s IQR-overlap rescue
//! then compares dispersion that actually includes run-to-run noise,
//! which is the regime a PR-over-PR diff operates in.
//!
//! The merged snapshot replaces any existing snapshot with the same
//! label in `--out` (or is appended), preserving the series schema
//! `bench-diff` reads.

use std::path::PathBuf;
use std::process::Command;

use megh_bench::{BenchResult, BenchSnapshot};

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Aggregates one probe's repetition medians into a snapshot row.
/// Every latency field is a between-run statistic over the repetition
/// medians; `allocs` must be bit-reproducible, so any disagreement
/// across repetitions is reported as corrupt.
fn between_runs(id: &str, reps: &[&BenchResult]) -> Result<BenchResult, String> {
    let mut medians: Vec<f64> = reps.iter().map(|r| r.median_ns).collect();
    medians.sort_by(f64::total_cmp);
    let allocs = reps[0].allocs;
    if reps.iter().any(|r| r.allocs != allocs) {
        return Err(format!(
            "probe {id}: allocation counts differ across repetitions (must be deterministic): {:?}",
            reps.iter().map(|r| r.allocs).collect::<Vec<_>>()
        ));
    }
    Ok(BenchResult {
        id: id.to_string(),
        mean_ns: medians.iter().sum::<f64>() / medians.len() as f64,
        median_ns: percentile(&medians, 0.50),
        min_ns: medians[0],
        max_ns: medians[medians.len() - 1],
        samples: reps.iter().map(|r| r.samples).sum(),
        allocs,
        p99_ns: None,
        throughput_per_sec: None,
        p25_ns: Some(percentile(&medians, 0.25)),
        p75_ns: Some(percentile(&medians, 0.75)),
    })
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_refresh: {msg}");
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut label = "PR9".to_string();
    let mut bench = "decision_latency".to_string();
    let mut group = "decide".to_string();
    let mut out = "BENCH_decision_latency.json".to_string();
    let mut reps = 5usize;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned();
        match args[i].as_str() {
            "--snapshot" => label = value.unwrap_or(label),
            "--bench" => bench = value.unwrap_or(bench),
            "--group" => group = value.unwrap_or(group),
            "--out" => out = value.unwrap_or(out),
            "--reps" => reps = value.and_then(|v| v.parse().ok()).unwrap_or(reps),
            other => fail(&format!("unknown argument {other}")),
        }
        i += 2;
    }
    let reps = reps.max(2); // one run has no between-run spread

    let tmp = std::env::temp_dir().join(format!("megh-bench-refresh-{}", std::process::id()));
    let mut runs: Vec<Vec<BenchResult>> = Vec::with_capacity(reps);
    for rep in 0..reps {
        let dir: PathBuf = tmp.join(format!("rep{rep}"));
        eprintln!(
            "bench_refresh: repetition {}/{reps} (fresh process)",
            rep + 1
        );
        let status = Command::new("cargo")
            .args(["bench", "-q", "-p", "megh-bench", "--bench", &bench])
            .env("BENCH_JSON_DIR", &dir)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => fail(&format!("repetition {rep}: cargo bench exited with {s}")),
            Err(e) => fail(&format!("repetition {rep}: cannot spawn cargo bench: {e}")),
        }
        let path = dir.join(format!("{group}.json"));
        let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            fail(&format!(
                "repetition {rep}: cannot read {}: {e}",
                path.display()
            ))
        });
        let results: Vec<BenchResult> = serde_json::from_str(&raw).unwrap_or_else(|e| {
            fail(&format!(
                "repetition {rep}: cannot parse {}: {e}",
                path.display()
            ))
        });
        runs.push(results);
    }
    std::fs::remove_dir_all(&tmp).ok();

    // Probe order of the first repetition; every repetition must cover
    // the same probe set (same binary, same bench body).
    let merged: Vec<BenchResult> = runs[0]
        .iter()
        .map(|first| {
            let reps: Vec<&BenchResult> = runs
                .iter()
                .filter_map(|run| run.iter().find(|r| r.id == first.id))
                .collect();
            if reps.len() != runs.len() {
                fail(&format!(
                    "probe {} present in {}/{} repetitions",
                    first.id,
                    reps.len(),
                    runs.len()
                ));
            }
            between_runs(&first.id, &reps).unwrap_or_else(|e| fail(&e))
        })
        .collect();

    let mut series: Vec<BenchSnapshot> = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    series.retain(|s| s.snapshot != label);
    series.push(BenchSnapshot {
        snapshot: label.clone(),
        results: merged,
    });
    let json = serde_json::to_string_pretty(&series).unwrap_or_else(|e| fail(&e.to_string()));
    if let Err(e) = std::fs::write(&out, json + "\n") {
        fail(&format!("cannot write {out}: {e}"));
    }

    let last = &series[series.len() - 1];
    println!("bench_refresh [{label}]: {reps} fresh-process repetitions -> {out}");
    for r in &last.results {
        let (p25, p75) = (r.p25_ns.unwrap_or(0.0), r.p75_ns.unwrap_or(0.0));
        println!(
            "  {:<24} median {:>10.1} ns   between-run IQR [{:.1} .. {:.1}]",
            r.id, r.median_ns, p25, p75
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(median_ns: f64, allocs: Option<u64>) -> BenchResult {
        BenchResult {
            id: "probe".into(),
            mean_ns: median_ns,
            median_ns,
            min_ns: median_ns - 1.0,
            max_ns: median_ns + 1.0,
            samples: 20,
            allocs,
            p99_ns: Some(median_ns + 0.5),
            throughput_per_sec: None,
            p25_ns: Some(median_ns - 0.5),
            p75_ns: Some(median_ns + 0.5),
        }
    }

    #[test]
    fn quartiles_come_from_repetition_medians_not_samples() {
        // Five fresh-process medians spread 100..140; the within-run
        // quartiles (±0.5 around each median) must not leak through.
        let reps: Vec<BenchResult> = [120.0, 100.0, 140.0, 110.0, 130.0]
            .iter()
            .map(|&m| rep(m, Some(3)))
            .collect();
        let refs: Vec<&BenchResult> = reps.iter().collect();
        let merged = between_runs("probe", &refs).unwrap();
        assert_eq!(merged.median_ns, 120.0);
        assert_eq!(merged.p25_ns, Some(110.0));
        assert_eq!(merged.p75_ns, Some(130.0));
        assert_eq!(merged.min_ns, 100.0);
        assert_eq!(merged.max_ns, 140.0);
        assert_eq!(merged.samples, 100, "sample count sums across runs");
        assert_eq!(merged.allocs, Some(3));
    }

    #[test]
    fn diverging_alloc_counts_are_rejected() {
        let a = rep(100.0, Some(3));
        let b = rep(101.0, Some(4));
        assert!(between_runs("probe", &[&a, &b]).is_err());
    }
}
