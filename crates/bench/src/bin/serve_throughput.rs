//! `serve_throughput` — sustained decision throughput and tail latency
//! of the `megh serve` daemon under concurrent write load.
//!
//! Usage:
//!   cargo run --release -p megh-bench --bin serve_throughput \
//!       [--snapshot LABEL] [--out FILE] [--clients N] [--decides N]
//!
//! Starts an in-process daemon on a loopback TCP port, keeps one
//! background connection streaming `observe` updates (so the writer
//! thread continuously thaws/learns/re-freezes snapshots), and measures
//! `--clients` concurrent connections each issuing `--decides` seeded
//! decide requests. Appends a `{snapshot, results}` entry to `FILE`
//! (default `BENCH_serve_throughput.json`, repo root) in the same
//! series schema `bench-diff` reads; re-running with an existing label
//! replaces that snapshot instead of duplicating it.
//!
//! Probes recorded:
//! - `serve/decide_p99_under_load` — per-request latency distribution
//!   across all client samples, with `p99_ns` filled in;
//! - `serve/decide_sustained` — wall-clock ns per decision across the
//!   whole fleet, with `throughput_per_sec` = decisions/sec.
//!
//! Like every latency probe these numbers are advisory in `bench-diff`;
//! only the snapshot shape is a gate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use megh_bench::{BenchResult, BenchSnapshot};
use megh_core::MeghConfig;
use megh_serve::{Client, Listen, Request, Response, ServeOptions, Server};

fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_serve_throughput.json".to_string();
    let mut label = "PR6".to_string();
    let mut clients = 4usize;
    let mut decides = 1500usize;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned();
        match args[i].as_str() {
            "--out" => out = value.unwrap_or(out),
            "--snapshot" => label = value.unwrap_or(label),
            "--clients" => clients = value.and_then(|v| v.parse().ok()).unwrap_or(clients),
            "--decides" => decides = value.and_then(|v| v.parse().ok()).unwrap_or(decides),
            other => {
                eprintln!("serve_throughput: unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    // Daemon on an ephemeral loopback port; checkpoint in a temp dir.
    let dir = std::env::temp_dir().join(format!("megh-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let opts = ServeOptions::new(Listen::parse("127.0.0.1:0"), dir.join("checkpoint.json"));
    let config = MeghConfig::paper_defaults(40, 20);
    let dim = config.n_vms * config.n_hosts;
    let server = Server::bind(config, &opts).expect("bind");
    let addr = server.local_addr().expect("tcp addr");
    let listen = Listen::parse(&addr.to_string());
    let daemon = std::thread::spawn(move || server.run().expect("serve"));

    // Warm the model so decides run against a learned snapshot.
    let mut warm = Client::connect(&listen).expect("connect");
    for s in 0..200 {
        warm.observe(s % dim, 0.05 + (s % 9) as f64 * 0.01)
            .expect("warm observe");
    }
    warm.sync().expect("warm sync");

    // Background write load for the whole measurement window: the
    // writer keeps batching updates and publishing fresh snapshots
    // while the clients read.
    let stop = Arc::new(AtomicBool::new(false));
    let load = {
        let stop = Arc::clone(&stop);
        let listen = listen.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&listen).expect("load connect");
            let mut s = 0usize;
            while !stop.load(Ordering::Relaxed) {
                c.observe(s % dim, 0.02 + (s % 11) as f64 * 0.01)
                    .expect("load observe");
                s += 1;
                if s.is_multiple_of(64) {
                    c.sync().expect("load sync");
                }
            }
            s
        })
    };

    // The measured fleet.
    let wall = Instant::now();
    let mut fleet = Vec::new();
    for t in 0..clients {
        let listen = listen.clone();
        fleet.push(std::thread::spawn(move || {
            let mut c = Client::connect(&listen).expect("client connect");
            let mut samples_ns = Vec::with_capacity(decides);
            for k in 0..decides {
                let seed = (t * decides + k) as u64;
                let started = Instant::now();
                let r = c.request(&Request::Decide { seed }).expect("decide");
                samples_ns.push(started.elapsed().as_nanos() as f64);
                assert!(matches!(r, Response::Decision { .. }), "{r:?}");
            }
            samples_ns
        }));
    }
    let mut samples_ns: Vec<f64> = fleet
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    let wall_s = wall.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    let load_updates = load.join().expect("load thread");
    Client::connect(&listen)
        .expect("shutdown connect")
        .shutdown()
        .expect("shutdown");
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);

    samples_ns.sort_by(f64::total_cmp);
    let total = samples_ns.len();
    let mean_ns = samples_ns.iter().sum::<f64>() / total as f64;
    let p99_ns = percentile(&samples_ns, 0.99);
    let per_decision_ns = wall_s * 1e9 / total as f64;
    let decisions_per_sec = total as f64 / wall_s;

    let results = vec![
        BenchResult {
            id: format!("serve/decide_p99_under_load/{clients}c"),
            mean_ns,
            median_ns: percentile(&samples_ns, 0.50),
            min_ns: samples_ns[0],
            max_ns: samples_ns[total - 1],
            samples: total,
            allocs: None,
            p99_ns: Some(p99_ns),
            throughput_per_sec: None,
            p25_ns: Some(percentile(&samples_ns, 0.25)),
            p75_ns: Some(percentile(&samples_ns, 0.75)),
        },
        BenchResult {
            id: format!("serve/decide_sustained/{clients}c"),
            mean_ns: per_decision_ns,
            median_ns: per_decision_ns,
            min_ns: per_decision_ns,
            max_ns: per_decision_ns,
            samples: total,
            allocs: None,
            p99_ns: None,
            throughput_per_sec: Some(decisions_per_sec),
            // A single wall-clock window has no repetition spread.
            p25_ns: None,
            p75_ns: None,
        },
    ];

    // Replace-or-append into the tracked series.
    let mut series: Vec<BenchSnapshot> = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    series.retain(|s| s.snapshot != label);
    series.push(BenchSnapshot {
        snapshot: label.clone(),
        results,
    });
    let json = serde_json::to_string_pretty(&series).expect("serialize series");
    std::fs::write(&out, json + "\n").expect("write series");

    println!(
        "serve_throughput [{label}]: {clients} clients x {decides} decides \
         under write load ({load_updates} background updates)"
    );
    println!(
        "  sustained: {decisions_per_sec:.0} decisions/sec ({per_decision_ns:.0} ns/decision fleet-wide)"
    );
    println!(
        "  latency:   median {:.0} ns, mean {mean_ns:.0} ns, p99 {p99_ns:.0} ns",
        percentile(&samples_ns, 0.50)
    );
    println!("  series:    {out} ({} snapshot(s))", series.len());
}
