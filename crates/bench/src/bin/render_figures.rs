//! Renders SVG figures from the CSV series the experiment binaries
//! drop into `results/`. Run the `fig*` binaries first, then this.
//!
//! Usage: `cargo run -p megh-bench --release --bin render_figures`

use std::fs;
use std::path::Path;

use megh_bench::{ensure_results_dir, LineChart};

/// Reads a results CSV written by `write_csv`: header row, then numeric
/// rows. Returns `(headers, columns)`.
fn read_csv(path: &Path) -> Option<(Vec<String>, Vec<Vec<f64>>)> {
    let content = fs::read_to_string(path).ok()?;
    let mut lines = content.lines();
    let headers: Vec<String> = lines.next()?.split(',').map(str::to_string).collect();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); headers.len()];
    for line in lines {
        let cells: Vec<f64> = line
            .split(',')
            .map(|c| c.trim().parse().unwrap_or(f64::NAN))
            .collect();
        if cells.len() != headers.len() {
            return None;
        }
        for (col, v) in columns.iter_mut().zip(cells) {
            col.push(v);
        }
    }
    Some((headers, columns))
}

/// Renders one multi-series figure: column 0 is x, the rest are series.
fn render_series(dir: &Path, stem: &str, title: &str, x_label: &str, y_label: &str, log_y: bool) {
    let csv = dir.join(format!("{stem}.csv"));
    let Some((headers, columns)) = read_csv(&csv) else {
        eprintln!("  skipping {stem}: no usable {}", csv.display());
        return;
    };
    let mut chart = LineChart::new(title, x_label, y_label);
    if log_y {
        chart.log_y();
    }
    let xs = &columns[0];
    for (name, col) in headers.iter().zip(&columns).skip(1) {
        let pts: Vec<(f64, f64)> = xs.iter().copied().zip(col.iter().copied()).collect();
        chart.add_series(name.clone(), pts);
    }
    let out = dir.join(format!("{stem}.svg"));
    match chart.save(&out) {
        Ok(()) => println!("  rendered {}", out.display()),
        Err(e) => eprintln!("  failed {stem}: {e}"),
    }
}

fn main() {
    let dir = ensure_results_dir().expect("results dir");
    println!("rendering figures from {}", dir.display());

    render_series(
        &dir,
        "fig1a_planetlab_dynamics",
        "Figure 1(a) — PlanetLab workload dynamics",
        "step",
        "utilization %",
        false,
    );
    render_series(
        &dir,
        "fig1b_google_durations",
        "Figure 1(b) — Google task durations",
        "log10 seconds",
        "count",
        false,
    );
    for (prefix, family) in [("fig2", "PlanetLab"), ("fig3", "Google Cluster")] {
        render_series(
            &dir,
            &format!("{prefix}a_cost_per_step"),
            &format!("{family}: per-step cost"),
            "step",
            "USD / step",
            false,
        );
        render_series(
            &dir,
            &format!("{prefix}b_cumulative_migrations"),
            &format!("{family}: cumulative migrations"),
            "step",
            "migrations",
            true,
        );
        render_series(
            &dir,
            &format!("{prefix}c_active_hosts"),
            &format!("{family}: active hosts"),
            "step",
            "hosts",
            false,
        );
        render_series(
            &dir,
            &format!("{prefix}d_execution_ms"),
            &format!("{family}: decision time"),
            "step",
            "ms",
            true,
        );
    }
    for (prefix, family) in [("fig4", "PlanetLab subset"), ("fig5", "Google subset")] {
        render_series(
            &dir,
            &format!("{prefix}a_cost_per_step"),
            &format!("Megh vs MadVM ({family}): per-step cost"),
            "step",
            "USD / step",
            false,
        );
        render_series(
            &dir,
            &format!("{prefix}b_cumulative_migrations"),
            &format!("Megh vs MadVM ({family}): migrations"),
            "step",
            "migrations",
            false,
        );
        render_series(
            &dir,
            &format!("{prefix}c_active_hosts"),
            &format!("Megh vs MadVM ({family}): active hosts"),
            "step",
            "hosts",
            false,
        );
        render_series(
            &dir,
            &format!("{prefix}d_execution_ms"),
            &format!("Megh vs MadVM ({family}): decision time"),
            "step",
            "ms",
            true,
        );
    }
    render_series(
        &dir,
        "fig7_qtable_growth",
        "Figure 7 — Q-table non-zeros",
        "step",
        "non-zeros",
        false,
    );
    render_series(
        &dir,
        "fig8a_temp0",
        "Figure 8(a) — sensitivity to Temp0",
        "Temp0",
        "USD / step",
        false,
    );
    render_series(
        &dir,
        "fig8b_epsilon",
        "Figure 8(b) — sensitivity to epsilon",
        "epsilon",
        "USD / step",
        false,
    );
    render_series(
        &dir,
        "fig8c_temp0_small_space",
        "Figure 8(c) — small-space sensitivity",
        "Temp0",
        "USD / step",
        false,
    );
}
