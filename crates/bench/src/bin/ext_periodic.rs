//! Extension experiment: periodicity-aware Megh (the paper's §7
//! future-work direction) against plain Megh on the diurnal
//! PlanetLab-like workload.
//!
//! Usage: `cargo run -p megh-bench --release --bin ext_periodic [--full]`

use megh_bench::{
    ensure_results_dir, format_table, planetlab_experiment, run_megh, run_scheduler,
    scale_from_args, write_json, Scale,
};
use megh_core::{MeghConfig, PeriodicMeghAgent};
use megh_sim::{DataCenterConfig, InitialPlacement, SummaryReport};
use megh_trace::DiurnalConfig;

fn run_family(
    label: &str,
    config: &DataCenterConfig,
    trace: &megh_trace::WorkloadTrace,
) -> Vec<SummaryReport> {
    let (n, m) = (config.vms.len(), config.pms.len());
    let mut reports = Vec::new();
    reports.push(run_megh(config, trace, 42).expect("valid setup").report());
    eprintln!("  [{label}] Megh done");
    for phases in [2usize, 4, 8] {
        let mut cfg = MeghConfig::paper_defaults(n, m);
        cfg.seed = 42;
        let agent = PeriodicMeghAgent::new(cfg, phases);
        let outcome = run_scheduler(config, trace, agent).expect("valid setup");
        let mut report = outcome.report();
        report.scheduler = format!("Megh-P{phases}");
        eprintln!(
            "  [{label}] {} done: {:.1} USD",
            report.scheduler, report.total_cost_usd
        );
        reports.push(report);
    }
    reports
}

fn main() {
    let scale = scale_from_args();

    // (a) The paper's PlanetLab workload: bursts are aperiodic, so the
    // phase split mostly adds noise (EXPERIMENTS.md).
    let (config, trace) = planetlab_experiment(scale, 42);
    eprintln!(
        "ext_periodic: {} hosts, {} VMs, {} steps",
        config.pms.len(),
        config.vms.len(),
        trace.n_steps()
    );
    let planetlab_reports = run_family("planetlab", &config, &trace);
    println!(
        "{}",
        format_table(
            "Extension — periodicity-aware Megh (PlanetLab, aperiodic bursts)",
            &planetlab_reports
        )
    );

    // (b) A strongly diurnal enterprise workload — the §7 setting where
    // phase conditioning has something real to learn.
    let (m, n, days) = match scale {
        Scale::Reduced => (60usize, 80usize, 7usize),
        Scale::Full => (300, 400, 7),
    };
    let mut diurnal_config = DataCenterConfig::paper_planetlab(m, n);
    diurnal_config.initial_placement = InitialPlacement::DemandPacked;
    let diurnal_trace = DiurnalConfig::new(n, 42).generate(days);
    let diurnal_reports = run_family("diurnal", &diurnal_config, &diurnal_trace);
    println!(
        "{}",
        format_table(
            "Extension — periodicity-aware Megh (diurnal enterprise workload)",
            &diurnal_reports
        )
    );

    let dir = ensure_results_dir().expect("results dir");
    write_json(dir.join("ext_periodic_planetlab.json"), &planetlab_reports).expect("write results");
    write_json(dir.join("ext_periodic_diurnal.json"), &diurnal_reports).expect("write results");
    println!("wrote results/ext_periodic_{{planetlab,diurnal}}.json");
}
