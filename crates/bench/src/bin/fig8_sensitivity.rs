//! Figure 8: sensitivity of Megh's per-step cost to the exploration
//! parameters Temp₀ and ε.
//!
//! The paper varies Temp₀ over 0.5–10 (step 0.5) with ε = 0.001, and ε
//! over 30 log-spaced values in [10⁻³, 10⁰] with Temp₀ = 1, running 25
//! repeats per value on PlanetLab. The default here uses a smaller fleet
//! and 5 repeats; `--full` restores the paper's grids.
//!
//! Usage: `cargo run -p megh-bench --release --bin fig8_sensitivity [--full]`

use megh_bench::{ensure_results_dir, scale_from_args, write_csv, Scale};
use megh_core::{MeghAgent, MeghConfig};
use megh_sim::{DataCenterConfig, InitialPlacement, Simulation};
use megh_trace::PlanetLabConfig;

fn per_step_cost(m: usize, n: usize, steps: usize, temp0: f64, epsilon: f64, seed: u64) -> f64 {
    let mut config = DataCenterConfig::paper_planetlab(m, n);
    config.initial_placement = InitialPlacement::DemandPacked;
    let trace = PlanetLabConfig::new(n, seed).generate_steps(steps);
    let sim = Simulation::new(config, trace).expect("valid setup");
    let mut megh_cfg = MeghConfig::paper_defaults(n, m);
    megh_cfg.temp0 = temp0;
    megh_cfg.epsilon = epsilon;
    megh_cfg.seed = seed;
    let report = sim.run(MeghAgent::new(megh_cfg)).report();
    report.total_cost_usd / report.steps.max(1) as f64
}

fn quantiles(mut xs: Vec<f64>) -> (f64, f64, f64) {
    xs.sort_by(f64::total_cmp);
    let q = |p: f64| xs[((xs.len() - 1) as f64 * p) as usize];
    (q(0.1), q(0.5), q(0.9))
}

fn main() {
    let scale = scale_from_args();
    // Temperature only matters when Q values (≈ discounted per-step
    // costs in USD) are commensurate with Temp₀ ∈ [0.5, 10]; that needs
    // a fleet large enough for per-step costs of the paper's order.
    let (m, n, steps, repeats) = match scale {
        Scale::Reduced => (160, 210, 576, 5),
        Scale::Full => (800, 1052, 2016, 25),
    };
    let temp0_values: Vec<f64> = match scale {
        Scale::Reduced => (1..=10).map(|i| i as f64).collect(),
        Scale::Full => (1..=20).map(|i| i as f64 * 0.5).collect(),
    };
    let eps_count = match scale {
        Scale::Reduced => 10,
        Scale::Full => 30,
    };
    let eps_values: Vec<f64> = (0..eps_count)
        .map(|i| 10f64.powf(-3.0 + 3.0 * i as f64 / (eps_count - 1) as f64))
        .collect();
    eprintln!("fig8: {m} hosts, {n} VMs, {steps} steps, {repeats} repeats");

    let dir = ensure_results_dir().expect("results dir");

    // Seeds are independent per (value, repeat), matching the paper's
    // protocol of 25 independent runs per parameter value. Note the
    // reproduction finding (EXPERIMENTS.md): under *paired* seeds the
    // curves are exactly flat — at paper scale the unexplored action
    // class dominates the Boltzmann mass for every Temp₀ in [0.5, 10],
    // so the spread the paper plots is run-to-run noise.
    let seed_of = |panel: u64, idx: usize, rep: usize| {
        3_000_000 + panel * 1_000_000 + (idx * 100 + rep) as u64
    };

    // (a) Vary Temp₀ at ε = 0.001.
    println!("Figure 8(a) — per-step cost vs Temp0 (ε = 0.001)");
    let mut rows_a = Vec::new();
    for (i, &temp0) in temp0_values.iter().enumerate() {
        let costs: Vec<f64> = (0..repeats)
            .map(|rep| per_step_cost(m, n, steps, temp0, 0.001, seed_of(0, i, rep)))
            .collect();
        let (q10, q50, q90) = quantiles(costs);
        println!("  Temp0 = {temp0:4.1}: median {q50:.4} USD/step  [{q10:.4}, {q90:.4}]");
        rows_a.push(vec![temp0, q10, q50, q90]);
    }
    write_csv(
        dir.join("fig8a_temp0.csv"),
        &["temp0", "q10", "median", "q90"],
        rows_a,
    )
    .expect("fig8a");

    // (b) Vary ε at Temp₀ = 1.
    println!("Figure 8(b) — per-step cost vs epsilon (Temp0 = 1)");
    let mut rows_b = Vec::new();
    for (i, &eps) in eps_values.iter().enumerate() {
        let costs: Vec<f64> = (0..repeats)
            .map(|rep| per_step_cost(m, n, steps, 1.0, eps, seed_of(1, i, rep)))
            .collect();
        let (q10, q50, q90) = quantiles(costs);
        println!("  ε = {eps:8.4}: median {q50:.4} USD/step  [{q10:.4}, {q90:.4}]");
        rows_b.push(vec![eps, q10, q50, q90]);
    }
    write_csv(
        dir.join("fig8b_epsilon.csv"),
        &["epsilon", "q10", "median", "q90"],
        rows_b,
    )
    .expect("fig8b");

    // (c) Extension: a small action space (d = N × M small enough for
    // exploration to cover it) where the exploration–exploitation
    // trade-off is actually observable in behaviour, not just noise.
    println!("Figure 8(c) — small-space sensitivity (8 hosts, 12 VMs)");
    let mut rows_c = Vec::new();
    for (i, &temp0) in temp0_values.iter().enumerate() {
        let costs: Vec<f64> = (0..repeats)
            .map(|rep| per_step_cost(8, 12, 576, temp0, 0.001, seed_of(2, i, rep)))
            .collect();
        let (q10, q50, q90) = quantiles(costs);
        println!("  Temp0 = {temp0:4.1}: median {q50:.5} USD/step  [{q10:.5}, {q90:.5}]");
        rows_c.push(vec![temp0, q10, q50, q90]);
    }
    write_csv(
        dir.join("fig8c_temp0_small_space.csv"),
        &["temp0", "q10", "median", "q90"],
        rows_c,
    )
    .expect("fig8c");

    println!("wrote results/fig8{{a,b}}_*.csv, results/fig8c_temp0_small_space.csv");
}
