//! `sim_step` — per-step wall-clock of the streaming simulation engine,
//! sequential vs parallel per-step accounting.
//!
//! Usage:
//!   cargo run --release -p megh-bench --bin sim_step \
//!       [--snapshot LABEL] [--out FILE] [--hosts N] [--vms N] \
//!       [--days N] [--threads N] [--reps N]
//!
//! Runs the same NoOp workload `--reps` times with `sim_threads = 1`
//! and `sim_threads = --threads`, records wall-clock nanoseconds per
//! simulated step for each repetition, and appends a
//! `{snapshot, results}` entry to `FILE` (default `BENCH_sim_step.json`,
//! repo root) in the series schema `bench-diff` reads; re-running with
//! an existing label replaces that snapshot.
//!
//! Every run's outcome fingerprint is asserted identical — the probe
//! doubles as a determinism check: thread count must never change the
//! simulated bytes, only the wall-clock.
//!
//! Probes recorded:
//! - `sim/step_wall/1t` — ns per step, sequential accounting;
//! - `sim/step_wall/<N>t` — ns per step with N per-step workers.
//!
//! Like every latency probe these numbers are advisory in `bench-diff`;
//! only the snapshot shape is a gate.

use std::time::Instant;

use megh_bench::{BenchResult, BenchSnapshot};
use megh_flags::{EnvArgs, FlagSource as _};
use megh_sim::{DataCenterConfig, InitialPlacement, NoOpScheduler, SimOptions, Simulation};
use megh_trace::PlanetLabConfig;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn probe(id: String, mut samples_ns: Vec<f64>) -> BenchResult {
    samples_ns.sort_by(f64::total_cmp);
    let n = samples_ns.len();
    BenchResult {
        id,
        mean_ns: samples_ns.iter().sum::<f64>() / n as f64,
        median_ns: percentile(&samples_ns, 0.50),
        min_ns: samples_ns[0],
        max_ns: samples_ns[n - 1],
        samples: n,
        allocs: None,
        p99_ns: None,
        throughput_per_sec: None,
        p25_ns: Some(percentile(&samples_ns, 0.25)),
        p75_ns: Some(percentile(&samples_ns, 0.75)),
    }
}

fn main() {
    let args = EnvArgs::from_env();
    let out = args
        .value("out")
        .unwrap_or("BENCH_sim_step.json")
        .to_string();
    let label = args.value("snapshot").unwrap_or("PR8").to_string();
    let hosts = args.lenient_usize("hosts", 40);
    let vms = args.lenient_usize("vms", 80);
    let days = args.lenient_usize("days", 2);
    let threads = args.lenient_usize("threads", 4);
    let reps = args.lenient_usize("reps", 5);

    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;
    let trace = PlanetLabConfig::new(vms, 42).generate(days);
    let steps = trace.n_steps();
    let sim = Simulation::new(config, trace).expect("valid setup");

    let mut results = Vec::new();
    let mut fingerprint: Option<String> = None;
    for sim_threads in [1, threads] {
        let sim = sim.clone().with_options(SimOptions {
            sim_threads,
            ..SimOptions::default()
        });
        let mut samples_ns = Vec::with_capacity(reps);
        for _ in 0..reps {
            let started = Instant::now();
            let outcome = sim.run(NoOpScheduler);
            samples_ns.push(started.elapsed().as_nanos() as f64 / steps as f64);
            let fp = outcome.fingerprint();
            match &fingerprint {
                None => fingerprint = Some(fp),
                Some(base) => {
                    assert_eq!(base, &fp, "outcome changed with sim_threads={sim_threads}")
                }
            }
        }
        println!(
            "sim_step [{label}]: {sim_threads} thread(s): median {:.0} ns/step \
             over {reps} rep(s) of {steps} steps ({hosts} hosts, {vms} VMs)",
            probe(String::new(), samples_ns.clone()).median_ns
        );
        results.push(probe(format!("sim/step_wall/{sim_threads}t"), samples_ns));
        if threads == 1 {
            // Both entries would carry the same id; one suffices.
            break;
        }
    }

    // Replace-or-append into the tracked series.
    let mut series: Vec<BenchSnapshot> = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    series.retain(|s| s.snapshot != label);
    series.push(BenchSnapshot {
        snapshot: label.clone(),
        results,
    });
    let json = serde_json::to_string_pretty(&series).expect("serialize series");
    std::fs::write(&out, json + "\n").expect("write series");
    println!("  series:    {out} ({} snapshot(s))", series.len());
}
