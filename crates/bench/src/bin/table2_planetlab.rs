//! Table 2: performance evaluation for PlanetLab.
//!
//! Runs the five MMT heuristics and Megh over the 7-day PlanetLab-like
//! workload and prints total cost, #VM migrations, mean active hosts and
//! mean per-step execution time — the paper's Table 2 rows.
//!
//! Usage: `cargo run -p megh-bench --release --bin table2_planetlab [--full]`

use megh_bench::{
    ensure_results_dir, format_table, planetlab_experiment, run_all_mmt, run_megh, scale_from_args,
    write_json,
};

fn main() {
    let scale = scale_from_args();
    let (config, trace) = planetlab_experiment(scale, 42);
    eprintln!(
        "table2: {} hosts, {} VMs, {} steps ({scale:?})",
        config.pms.len(),
        config.vms.len(),
        trace.n_steps()
    );

    let mut reports = Vec::new();
    for outcome in run_all_mmt(&config, &trace).expect("valid setup") {
        eprintln!("  {} done", outcome.scheduler());
        reports.push(outcome.report());
    }
    let megh = run_megh(&config, &trace, 42).expect("valid setup");
    eprintln!("  {} done", megh.scheduler());
    reports.push(megh.report());

    println!(
        "{}",
        format_table("Table 2 — Performance Evaluation for PlanetLab", &reports)
    );

    let dir = ensure_results_dir().expect("results dir");
    write_json(dir.join("table2_planetlab.json"), &reports).expect("write results");
    eprintln!("wrote results/table2_planetlab.json");
}
