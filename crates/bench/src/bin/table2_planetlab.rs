//! Table 2: performance evaluation for PlanetLab.
//!
//! Runs the five MMT heuristics and Megh over the 7-day PlanetLab-like
//! workload and prints total cost, #VM migrations, mean active hosts and
//! mean per-step execution time — the paper's Table 2 rows — followed by
//! a "mean ± std over seeds" sweep table. The MMT baselines take no RNG
//! seed, so they run once and replicate across the sweep (std 0); Megh
//! is re-run per seed.
//!
//! Usage: `cargo run -p megh-bench --release --bin table2_planetlab
//! [--full] [--seeds N] [--threads T]`

use megh_bench::{
    ensure_results_dir, format_sweep_table, format_table, planetlab_experiment, replicate_sweep,
    run_all_mmt, run_megh, scale_from_args, sweep_megh, usize_flag_from_args, write_json,
};

fn main() {
    let scale = scale_from_args();
    let n_seeds = usize_flag_from_args("--seeds", 3);
    let threads = usize_flag_from_args("--threads", 1);
    let base_seed = 42u64;
    let (config, trace) = planetlab_experiment(scale, base_seed);
    eprintln!(
        "table2: {} hosts, {} VMs, {} steps ({scale:?}), {n_seeds} seed(s)",
        config.pms.len(),
        config.vms.len(),
        trace.n_steps()
    );
    let seeds: Vec<u64> = (0..n_seeds as u64).map(|i| base_seed + i).collect();

    let mut reports = Vec::new();
    let mut sweeps = Vec::new();
    for outcome in run_all_mmt(&config, &trace).expect("valid setup") {
        eprintln!("  {} done", outcome.scheduler());
        reports.push(outcome.report());
        sweeps.push(replicate_sweep(&outcome, &seeds));
    }
    let megh_sweep = sweep_megh(&config, &trace, &seeds, threads).expect("valid setup");
    eprintln!("  {} done ({} seeds)", megh_sweep.scheduler, n_seeds);
    // The classic single-run column is the base seed — the sweep's
    // seed-ordered first slot, so the table matches earlier revisions.
    let megh = run_megh(&config, &trace, base_seed).expect("valid setup");
    reports.push(megh.report());
    sweeps.push(megh_sweep);

    println!(
        "{}",
        format_table("Table 2 — Performance Evaluation for PlanetLab", &reports)
    );
    println!(
        "{}",
        format_sweep_table(
            &format!(
                "Table 2 (sweep) — seeds {base_seed}..{}",
                base_seed + n_seeds as u64 - 1
            ),
            &sweeps
        )
    );

    let dir = ensure_results_dir().expect("results dir");
    write_json(dir.join("table2_planetlab.json"), &reports).expect("write results");
    write_json(dir.join("table2_planetlab_sweep.json"), &sweeps).expect("write sweep results");
    eprintln!("wrote results/table2_planetlab.json and results/table2_planetlab_sweep.json");
}
