//! Figure 6: scalability of THR-MMT (a) vs Megh (b).
//!
//! Sweeps the number of PMs `m` and VMs `n` over a grid of PlanetLab
//! subsets, running several repeats per cell and reporting the mean
//! per-step decision time. The paper's grid is
//! m, n ∈ {100, …, 800} with 25 repeats; the default here is a coarser
//! grid with 3 repeats (`--full` restores the paper's grid).
//!
//! Usage: `cargo run -p megh-bench --release --bin fig6_scalability [--full]`

use megh_baselines::{MmtFlavor, MmtScheduler};
use megh_bench::{ensure_results_dir, run_megh, run_scheduler, scale_from_args, write_csv, Scale};
use megh_sim::{DataCenterConfig, InitialPlacement};
use megh_trace::PlanetLabConfig;

/// Steps simulated per cell (decision-time measurement window).
const STEPS: usize = 60;

fn main() {
    let scale = scale_from_args();
    let (grid, repeats): (Vec<usize>, usize) = match scale {
        Scale::Reduced => (vec![100, 200, 400], 3),
        Scale::Full => (vec![100, 200, 300, 400, 500, 600, 700, 800], 25),
    };
    eprintln!("fig6: grid {grid:?}, {repeats} repeats, {STEPS} steps/cell");

    let dir = ensure_results_dir().expect("results dir");
    let mut rows_thr = Vec::new();
    let mut rows_megh = Vec::new();
    for &m in &grid {
        for &n in &grid {
            let mut thr_ms = 0.0;
            let mut megh_ms = 0.0;
            for rep in 0..repeats {
                let seed = (m * 31 + n * 7 + rep) as u64;
                let mut config = DataCenterConfig::paper_planetlab(m, n);
                config.initial_placement = InitialPlacement::DemandPacked;
                let trace = PlanetLabConfig::new(n, seed).generate_steps(STEPS);
                let thr = run_scheduler(&config, &trace, MmtScheduler::new(MmtFlavor::Thr))
                    .expect("valid setup");
                thr_ms += thr.report().mean_decision_ms;
                let megh = run_megh(&config, &trace, seed).expect("valid setup");
                megh_ms += megh.report().mean_decision_ms;
            }
            thr_ms /= repeats as f64;
            megh_ms /= repeats as f64;
            eprintln!("  m={m:4} n={n:4}: THR-MMT {thr_ms:8.3} ms  Megh {megh_ms:8.3} ms");
            rows_thr.push(vec![m as f64, n as f64, thr_ms]);
            rows_megh.push(vec![m as f64, n as f64, megh_ms]);
        }
    }

    write_csv(
        dir.join("fig6a_thr_mmt_ms.csv"),
        &["pms", "vms", "mean_ms"],
        rows_thr.clone(),
    )
    .expect("fig6a");
    write_csv(
        dir.join("fig6b_megh_ms.csv"),
        &["pms", "vms", "mean_ms"],
        rows_megh.clone(),
    )
    .expect("fig6b");

    // Shape check: growth from the smallest to the largest cell.
    let growth = |rows: &[Vec<f64>]| -> f64 {
        let first = rows.first().map(|r| r[2]).unwrap_or(0.0).max(1e-9);
        let last = rows.last().map(|r| r[2]).unwrap_or(0.0);
        last / first
    };
    println!("Figure 6 — per-step decision time scaling (PlanetLab subsets)");
    println!("  THR-MMT grows {:.1}x across the grid", growth(&rows_thr));
    println!("  Megh    grows {:.1}x across the grid", growth(&rows_megh));
    println!("wrote results/fig6a_thr_mmt_ms.csv, results/fig6b_megh_ms.csv");
}
