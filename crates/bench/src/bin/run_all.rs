//! Convenience runner: executes every experiment binary's logic in
//! sequence at the current scale and renders the figures. Equivalent to
//! running each `fig*`/`table*` binary by hand, but one command.
//!
//! Usage: `cargo run -p megh-bench --release --bin run_all [--full]`

use std::process::Command;

/// Experiment binaries, in a sensible order (cheap first).
const EXPERIMENTS: [&str; 16] = [
    "fig1_workloads",
    "table2_planetlab",
    "table3_google",
    "fig2_planetlab_series",
    "fig3_google_series",
    "fig4_madvm_planetlab",
    "fig5_madvm_google",
    "fig6_scalability",
    "fig7_qtable_growth",
    "fig8_sensitivity",
    "ablation_megh",
    "ablation_mmt",
    "ablation_oversubscription",
    "ext_slav_metrics",
    "ext_qlearning",
    "ext_periodic",
];

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a parent dir")
        .to_path_buf();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("=== {name} ===");
        let mut cmd = Command::new(exe_dir.join(name));
        if full {
            cmd.arg("--full");
        }
        match cmd.status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{name} exited with {status}");
                failures.push(name);
            }
            Err(e) => {
                eprintln!("{name} failed to start: {e} (build with `cargo build --release -p megh-bench` first)");
                failures.push(name);
            }
        }
    }
    println!("=== render_figures ===");
    let _ = Command::new(exe_dir.join("render_figures")).status();
    if failures.is_empty() {
        println!("all experiments completed; see results/");
    } else {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
