//! Figure 5: Megh vs MadVM on a 100-PM / 150-VM Google Cluster subset
//! over 3 days, VMs allocated uniformly at random.
//!
//! Usage: `cargo run -p megh-bench --release --bin fig5_madvm_google`

use megh_bench::{
    ensure_results_dir, format_table, madvm_subset_experiment, run_madvm, run_megh, write_csv,
    SeriesBundle,
};

fn main() {
    let (config, trace) = madvm_subset_experiment(true, 45);
    eprintln!(
        "fig5: {} hosts, {} VMs, {} steps",
        config.pms.len(),
        config.vms.len(),
        trace.n_steps()
    );

    let madvm = run_madvm(&config, &trace).expect("valid setup");
    eprintln!("  MadVM done");
    let megh = run_megh(&config, &trace, 45).expect("valid setup");
    eprintln!("  Megh done");

    let bundle = SeriesBundle::new(&[&megh, &madvm]);
    let header_strings = bundle.headers();
    let headers: Vec<&str> = header_strings.iter().map(String::as_str).collect();
    let dir = ensure_results_dir().expect("results dir");
    write_csv(
        dir.join("fig5a_cost_per_step.csv"),
        &headers,
        bundle.rows(|r| r.total_cost_usd),
    )
    .expect("fig5a");
    write_csv(
        dir.join("fig5b_cumulative_migrations.csv"),
        &headers,
        bundle.rows(|r| r.cumulative_migrations as f64),
    )
    .expect("fig5b");
    write_csv(
        dir.join("fig5c_active_hosts.csv"),
        &headers,
        bundle.rows(|r| r.active_hosts as f64),
    )
    .expect("fig5c");
    write_csv(
        dir.join("fig5d_execution_ms.csv"),
        &headers,
        bundle.rows(|r| r.decision_micros as f64 / 1000.0),
    )
    .expect("fig5d");

    println!(
        "{}",
        format_table(
            "Figure 5 — Megh vs MadVM (Google subset, 100 PMs / 150 VMs)",
            &bundle.reports()
        )
    );
    println!("wrote results/fig5{{a,b,c,d}}_*.csv");
}
