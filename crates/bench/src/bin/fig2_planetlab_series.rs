//! Figure 2: Megh vs THR-MMT per-step series on PlanetLab.
//!
//! Panels: (a) per-step cost, (b) cumulative migrations, (c) active
//! hosts, (d) execution time. One CSV per panel.
//!
//! Usage: `cargo run -p megh-bench --release --bin fig2_planetlab_series [--full]`

use megh_baselines::{MmtFlavor, MmtScheduler};
use megh_bench::{
    ensure_results_dir, format_table, planetlab_experiment, run_megh, run_scheduler,
    scale_from_args, write_csv, SeriesBundle,
};

fn main() {
    let scale = scale_from_args();
    let (config, trace) = planetlab_experiment(scale, 42);
    eprintln!(
        "fig2: {} hosts, {} VMs, {} steps ({scale:?})",
        config.pms.len(),
        config.vms.len(),
        trace.n_steps()
    );

    let thr =
        run_scheduler(&config, &trace, MmtScheduler::new(MmtFlavor::Thr)).expect("valid setup");
    eprintln!("  THR-MMT done");
    let megh = run_megh(&config, &trace, 42).expect("valid setup");
    eprintln!("  Megh done");

    let bundle = SeriesBundle::new(&[&megh, &thr]);
    let header_strings = bundle.headers();
    let headers: Vec<&str> = header_strings.iter().map(String::as_str).collect();
    let dir = ensure_results_dir().expect("results dir");
    write_csv(
        dir.join("fig2a_cost_per_step.csv"),
        &headers,
        bundle.rows(|r| r.total_cost_usd),
    )
    .expect("fig2a");
    write_csv(
        dir.join("fig2b_cumulative_migrations.csv"),
        &headers,
        bundle.rows(|r| r.cumulative_migrations as f64),
    )
    .expect("fig2b");
    write_csv(
        dir.join("fig2c_active_hosts.csv"),
        &headers,
        bundle.rows(|r| r.active_hosts as f64),
    )
    .expect("fig2c");
    write_csv(
        dir.join("fig2d_execution_ms.csv"),
        &headers,
        bundle.rows(|r| r.decision_micros as f64 / 1000.0),
    )
    .expect("fig2d");

    println!(
        "{}",
        format_table("Figure 2 — Megh vs THR-MMT (PlanetLab)", &bundle.reports())
    );
    // §6.3's convergence reading of panel (a): when does the per-step
    // cost settle, and how noisy is it afterwards?
    for (name, records) in bundle.names.iter().zip(&bundle.records) {
        let costs: Vec<f64> = records.iter().map(|r| r.total_cost_usd).collect();
        let c = megh_core::diagnostics::detect_convergence(&costs, 50, 0.10);
        match c.converged_at {
            Some(at) => println!(
                "  {name}: per-step cost converges at step {at} (stable {:.3} ± {:.3} USD)",
                c.stable_mean, c.stable_std
            ),
            None => println!("  {name}: per-step cost never settles within 10 %"),
        }
    }
    println!("wrote results/fig2{{a,b,c,d}}_*.csv");
}
