//! Ablation study: which of Megh's design choices carry its
//! performance? (DESIGN.md §7 calls these out.)
//!
//! Varies, one at a time, against the paper-default configuration on
//! the PlanetLab setup:
//!
//! * the discount factor γ (0 = myopic, 0.9 = far-sighted; paper: 0.5),
//! * the actions-per-step allowance (1 vs the 2 %-of-VMs cap),
//! * the sleeping-target action mask (off = paper's unrestricted space),
//! * the exploration schedule in its degenerate corners.
//!
//! Usage: `cargo run -p megh-bench --release --bin ablation_megh [--full]`

use megh_bench::{
    ensure_results_dir, format_table, planetlab_experiment, run_scheduler, scale_from_args,
    write_json,
};
use megh_core::{MeghAgent, MeghConfig};
use megh_sim::SummaryReport;

fn main() {
    let scale = scale_from_args();
    let (config, trace) = planetlab_experiment(scale, 42);
    let (n, m) = (config.vms.len(), config.pms.len());
    eprintln!(
        "ablation_megh: {m} hosts, {n} VMs, {} steps",
        trace.n_steps()
    );

    let base = MeghConfig::paper_defaults(n, m);
    let variants: Vec<(&str, MeghConfig)> = vec![
        ("paper", base.clone()),
        (
            "gamma=0",
            MeghConfig {
                gamma: 0.0,
                ..base.clone()
            },
        ),
        (
            "gamma=0.9",
            MeghConfig {
                gamma: 0.9,
                ..base.clone()
            },
        ),
        (
            "2% actions",
            MeghConfig {
                actions_per_step: ((0.02 * n as f64).ceil() as usize).max(1),
                ..base.clone()
            },
        ),
        (
            "masked",
            MeghConfig {
                mask_sleeping_targets: true,
                ..base.clone()
            },
        ),
        (
            "no decay",
            MeghConfig {
                epsilon: 0.0,
                ..base.clone()
            },
        ),
        (
            "cold greedy",
            MeghConfig {
                temp0: 0.01,
                epsilon: 0.0,
                ..base.clone()
            },
        ),
    ];

    let mut reports: Vec<SummaryReport> = Vec::new();
    for (label, cfg) in variants {
        let outcome = run_scheduler(&config, &trace, MeghAgent::new(cfg)).expect("valid setup");
        let mut report = outcome.report();
        report.scheduler = format!("Megh[{label}]");
        eprintln!("  {label} done: {:.1} USD", report.total_cost_usd);
        reports.push(report);
    }

    println!(
        "{}",
        format_table("Ablation — Megh design choices", &reports)
    );
    let dir = ensure_results_dir().expect("results dir");
    write_json(dir.join("ablation_megh.json"), &reports).expect("write results");
    println!("wrote results/ablation_megh.json");
}
