//! Ablation study: what drives the MMT family's behaviour?
//!
//! Varies THR-MMT's two structural knobs on the PlanetLab setup:
//!
//! * the utilization bound (Beloglazov packs to the 0.8 detector
//!   threshold; safer bounds trade churn for headroom),
//! * underload consolidation on/off (off = pure overload mitigation),
//! * the detector's static threshold.
//!
//! Usage: `cargo run -p megh-bench --release --bin ablation_mmt [--full]`

use megh_baselines::{MmtFlavor, MmtScheduler, OverloadDetector};
use megh_bench::{
    ensure_results_dir, format_table, planetlab_experiment, run_scheduler, scale_from_args,
    write_json,
};
use megh_sim::SummaryReport;

fn main() {
    let scale = scale_from_args();
    let (config, trace) = planetlab_experiment(scale, 42);
    eprintln!(
        "ablation_mmt: {} hosts, {} VMs, {} steps",
        config.pms.len(),
        config.vms.len(),
        trace.n_steps()
    );

    let mut variants: Vec<(String, MmtScheduler)> = Vec::new();
    variants.push((
        "bound=0.8 (paper)".into(),
        MmtScheduler::new(MmtFlavor::Thr),
    ));
    for bound in [0.7, 0.6, 0.5] {
        let mut s = MmtScheduler::new(MmtFlavor::Thr);
        s.utilization_bound = bound;
        variants.push((format!("bound={bound}"), s));
    }
    let mut no_consolidation = MmtScheduler::new(MmtFlavor::Thr);
    no_consolidation.consolidate_underloaded = false;
    variants.push(("no consolidation".into(), no_consolidation));
    for threshold in [0.7, 0.9] {
        let s = MmtScheduler::with_detector(MmtFlavor::Thr, OverloadDetector::thr(threshold));
        variants.push((format!("detector thr={threshold}"), s));
    }

    let mut reports: Vec<SummaryReport> = Vec::new();
    for (label, scheduler) in variants {
        let outcome = run_scheduler(&config, &trace, scheduler).expect("valid setup");
        let mut report = outcome.report();
        report.scheduler = format!("THR[{label}]");
        eprintln!("  {label} done: {:.1} USD", report.total_cost_usd);
        reports.push(report);
    }

    println!(
        "{}",
        format_table("Ablation — THR-MMT design choices", &reports)
    );
    let dir = ensure_results_dir().expect("results dir");
    write_json(dir.join("ablation_mmt.json"), &reports).expect("write results");
    println!("wrote results/ablation_mmt.json");
}
