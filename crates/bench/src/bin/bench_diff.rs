//! `bench-diff` — compare the latest two snapshots of the tracked bench
//! series: warn about latency regressions, fail on exactly-reproducible
//! changes (vanished probes, allocation-count growth).
//!
//! Usage: `cargo run -p megh-bench --bin bench-diff [FILE] [--noise F]`
//!
//! `FILE` defaults to `BENCH_decision_latency.json` in the current
//! directory (ci.sh runs from the repo root). `--noise F` sets the
//! relative movement tolerated before a latency probe is flagged
//! (default 0.3, i.e. ±30 % — microbenchmark medians on shared machines
//! move that much without a code cause). Latency movement is advisory:
//! grep the output for `warning:` to see flagged probes. The exit code
//! is non-zero only for the deterministic checks (`error:` lines) —
//! a probe disappearing from the series or a heap allocation count
//! growing, neither of which has machine noise to hide behind.

use megh_bench::{diff_snapshots, fatal_failures, render_diff, BenchSnapshot};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = "BENCH_decision_latency.json".to_string();
    let mut noise = 0.3f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--noise" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    noise = v;
                }
                i += 2;
            }
            other => {
                file = other.to_string();
                i += 1;
            }
        }
    }

    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            // A missing series is a note, not a gate: only an existing
            // series can fail the deterministic checks.
            println!("bench-diff: cannot read {file}: {e} (skipping)");
            return ExitCode::SUCCESS;
        }
    };
    let series: Vec<BenchSnapshot> = match serde_json::from_str(&source) {
        Ok(s) => s,
        Err(e) => {
            println!("bench-diff: cannot parse {file}: {e} (skipping)");
            return ExitCode::SUCCESS;
        }
    };
    let n = series.len();
    if n < 2 {
        println!("bench-diff: {file} has {n} snapshot(s); need 2 to diff (skipping)");
        return ExitCode::SUCCESS;
    }
    let (prev, cur) = (&series[n - 2], &series[n - 1]);
    let lines = diff_snapshots(prev, cur, noise);
    print!("{}", render_diff(prev, cur, &lines));
    let failures = fatal_failures(prev, cur);
    for failure in &failures {
        println!("error: {failure}");
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
