//! `bench-diff` — compare the latest two snapshots of the tracked bench
//! series and warn (never fail) about latency regressions.
//!
//! Usage: `cargo run -p megh-bench --bin bench-diff [FILE] [--noise F]`
//!
//! `FILE` defaults to `BENCH_decision_latency.json` in the current
//! directory (ci.sh runs from the repo root). `--noise F` sets the
//! relative movement tolerated before a probe is flagged (default 0.3,
//! i.e. ±30 % — microbenchmark medians on shared machines move that
//! much without a code cause). The exit code is always 0: this is a
//! visibility stage, not a gate. Grep the output for `warning:` to see
//! flagged probes.

use megh_bench::{diff_snapshots, render_diff, BenchSnapshot};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = "BENCH_decision_latency.json".to_string();
    let mut noise = 0.3f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--noise" => {
                if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                    noise = v;
                }
                i += 2;
            }
            other => {
                file = other.to_string();
                i += 1;
            }
        }
    }

    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            // Non-fatal by contract: a missing series is a note, not a gate.
            println!("bench-diff: cannot read {file}: {e} (skipping)");
            return;
        }
    };
    let series: Vec<BenchSnapshot> = match serde_json::from_str(&source) {
        Ok(s) => s,
        Err(e) => {
            println!("bench-diff: cannot parse {file}: {e} (skipping)");
            return;
        }
    };
    let n = series.len();
    if n < 2 {
        println!("bench-diff: {file} has {n} snapshot(s); need 2 to diff (skipping)");
        return;
    }
    let (prev, cur) = (&series[n - 2], &series[n - 1]);
    let lines = diff_snapshots(prev, cur, noise);
    print!("{}", render_diff(prev, cur, &lines));
}
