//! `hier_scale` — fig6-style scalability sweep of the hierarchical
//! scheduler: decide latency and learned-state size from 1k to 10k
//! hosts, with flat Megh's curve alongside for contrast.
//!
//! Usage:
//!   cargo run --release -p megh-bench --bin hier_scale \
//!       [--snapshot LABEL] [--out FILE] [--iters N] [--warmup N]
//!
//! For each fleet size `m` hosts × `n = 1.32·m` VMs the sweep warms a
//! hierarchical agent (`~64` hosts per shard, the `hier` CLI default)
//! and a flat Megh agent over the same PlanetLab trace, captures a
//! mid-run view, and times bare `Scheduler::decide` calls — learning
//! mode and frozen-CSR evaluation mode (observe + decide, so the
//! critic's preview products run against the frozen snapshot and its
//! 4-lane unrolled kernels).
//!
//! Appends a `{snapshot, results}` entry to `FILE` (default
//! `BENCH_hier_scale.json`, repo root) in the same series schema
//! `bench-diff` reads; re-running with an existing label replaces that
//! snapshot. Probes:
//!
//! - `hier/decide/<m>`, `megh/decide/<m>` — learning-mode decide ns;
//! - `hier/decide_frozen/<m>`, `megh/decide_frozen/<m>` — eval-mode
//!   observe+decide ns against the frozen CSR snapshot;
//! - `hier/state_max_shard_qnnz/<m>`, `hier/state_dim_per_shard/<m>`,
//!   `megh/state_qnnz/<m>`, `megh/state_dim/<m>` — **state probes**:
//!   the value fields carry counts (entries), not nanoseconds. They
//!   document that per-shard state stays bounded while the flat basis
//!   `d = N × M` grows quadratically with the fleet.
//!
//! The headline check, printed and encoded in the series: the
//! hierarchical decide median from the smallest to the largest fleet
//! must stay flat (within 2×).

use std::time::Instant;

use megh_bench::{BenchResult, BenchSnapshot};
use megh_core::{HierConfig, HierMegh, MeghAgent, MeghConfig};
use megh_sim::{DataCenterConfig, DataCenterView, InitialPlacement, Scheduler, Simulation};
use megh_trace::PlanetLabConfig;

/// Fleet sizes swept (hosts); VMs are 1.32× as in the paper's ratio.
const HOSTS: [usize; 4] = [1000, 2000, 5000, 10_000];

/// Hosts per shard the `hier` CLI name auto-sizes to.
const HOSTS_PER_SHARD: usize = 64;

fn percentile(sorted_ns: &[f64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)]
}

/// Warms `scheduler` over a `warmup`-step PlanetLab run and returns it
/// together with the last simulated view (the decision input the timed
/// loop replays).
fn warmed<S: Scheduler>(
    m: usize,
    n: usize,
    warmup: usize,
    mut scheduler: S,
) -> (S, DataCenterView) {
    struct Tail<'a, S> {
        inner: &'a mut S,
        last_view: Option<DataCenterView>,
    }
    impl<S: Scheduler> Scheduler for Tail<'_, S> {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn decide(&mut self, view: &DataCenterView) -> Vec<megh_sim::MigrationRequest> {
            self.last_view = Some(view.clone());
            self.inner.decide(view)
        }
        fn observe(&mut self, feedback: &megh_sim::StepFeedback) {
            self.inner.observe(feedback)
        }
    }

    let mut config = DataCenterConfig::paper_planetlab(m, n);
    config.initial_placement = InitialPlacement::DemandPacked;
    let trace = PlanetLabConfig::new(n, 7).generate_steps(warmup);
    let sim = Simulation::new(config, trace).expect("valid setup");
    let mut tail = Tail {
        inner: &mut scheduler,
        last_view: None,
    };
    sim.run(&mut tail);
    let view = tail.last_view.expect("warmup ran at least one step");
    (scheduler, view)
}

/// Times `iters` calls of `f`, returning sorted per-call nanoseconds.
fn time_calls(iters: usize, mut f: impl FnMut()) -> Vec<f64> {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let started = Instant::now();
        f();
        samples.push(started.elapsed().as_nanos() as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples
}

fn latency_probe(id: String, sorted_ns: Vec<f64>) -> BenchResult {
    let total = sorted_ns.len();
    BenchResult {
        id,
        mean_ns: sorted_ns.iter().sum::<f64>() / total as f64,
        median_ns: percentile(&sorted_ns, 0.50),
        min_ns: sorted_ns[0],
        max_ns: sorted_ns[total - 1],
        samples: total,
        allocs: None,
        p99_ns: Some(percentile(&sorted_ns, 0.99)),
        throughput_per_sec: None,
        p25_ns: Some(percentile(&sorted_ns, 0.25)),
        p75_ns: Some(percentile(&sorted_ns, 0.75)),
    }
}

/// A count (entries, dimensions) recorded through the series schema:
/// every value field carries the count itself, so any later diff reads
/// growth ratios directly.
fn state_probe(id: String, count: usize) -> BenchResult {
    let v = count as f64;
    BenchResult {
        id,
        mean_ns: v,
        median_ns: v,
        min_ns: v,
        max_ns: v,
        samples: 1,
        allocs: None,
        p99_ns: None,
        throughput_per_sec: None,
        p25_ns: None,
        p75_ns: None,
    }
}

fn eval_feedback() -> megh_sim::StepFeedback {
    megh_sim::StepFeedback {
        step: 0,
        energy_cost_usd: 0.05,
        sla_cost_usd: 0.01,
        total_cost_usd: 0.06,
        applied: Vec::new(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_hier_scale.json".to_string();
    let mut label = "PR9".to_string();
    let mut iters = 2000usize;
    let mut warmup = 60usize;
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned();
        match args[i].as_str() {
            "--out" => out = value.unwrap_or(out),
            "--snapshot" => label = value.unwrap_or(label),
            "--iters" => iters = value.and_then(|v| v.parse().ok()).unwrap_or(iters),
            "--warmup" => warmup = value.and_then(|v| v.parse().ok()).unwrap_or(warmup),
            other => {
                eprintln!("hier_scale: unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    let mut results = Vec::new();
    let mut hier_medians = Vec::new();
    let mut megh_medians = Vec::new();
    for &m in &HOSTS {
        let n = m * 132 / 100;
        let shards = m.div_ceil(HOSTS_PER_SHARD).max(1);
        eprintln!("hier_scale: {m} hosts x {n} VMs ({shards} shards), warming {warmup} steps");

        // Hierarchical agent: learning decide, then frozen-CSR decide.
        let mk_hier = || {
            let mut cfg = HierConfig::paper_defaults(n, m, shards);
            cfg.base.seed = 7;
            HierMegh::new(cfg)
        };
        let (mut hier, view) = warmed(m, n, warmup, mk_hier());
        let learn_ns = time_calls(iters, || {
            std::hint::black_box(hier.decide(&view));
        });
        hier_medians.push(percentile(&learn_ns, 0.50));
        results.push(latency_probe(format!("hier/decide/{m}"), learn_ns));

        hier.freeze_all();
        let feedback = eval_feedback();
        let frozen_ns = time_calls(iters, || {
            hier.observe(&feedback);
            std::hint::black_box(hier.decide(&view));
        });
        results.push(latency_probe(format!("hier/decide_frozen/{m}"), frozen_ns));
        results.push(state_probe(
            format!("hier/state_max_shard_qnnz/{m}"),
            hier.max_shard_qtable_nnz(),
        ));
        let max_shard_dim = (0..hier.n_shards())
            .map(|s| hier.shard_lspi(s).dim())
            .max()
            .unwrap_or(0);
        results.push(state_probe(
            format!("hier/state_dim_per_shard/{m}"),
            max_shard_dim,
        ));

        // Flat Megh over the same fleet and trace.
        let mut flat_cfg = MeghConfig::paper_defaults(n, m);
        flat_cfg.seed = 7;
        let flat_dim = flat_cfg.delta as usize;
        let (mut megh, view) = warmed(m, n, warmup, MeghAgent::new(flat_cfg));
        let learn_ns = time_calls(iters, || {
            std::hint::black_box(megh.decide(&view));
        });
        megh_medians.push(percentile(&learn_ns, 0.50));
        results.push(latency_probe(format!("megh/decide/{m}"), learn_ns));

        megh.freeze();
        let frozen_ns = time_calls(iters, || {
            megh.observe(&feedback);
            std::hint::black_box(megh.decide(&view));
        });
        results.push(latency_probe(format!("megh/decide_frozen/{m}"), frozen_ns));
        results.push(state_probe(
            format!("megh/state_qnnz/{m}"),
            megh.qtable_nnz(),
        ));
        results.push(state_probe(format!("megh/state_dim/{m}"), flat_dim));
    }

    // Replace-or-append into the tracked series.
    let mut series: Vec<BenchSnapshot> = std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or_default();
    series.retain(|s| s.snapshot != label);
    series.push(BenchSnapshot {
        snapshot: label.clone(),
        results,
    });
    let json = serde_json::to_string_pretty(&series).expect("serialize series");
    std::fs::write(&out, json + "\n").expect("write series");

    let first = HOSTS[0];
    let last = HOSTS[HOSTS.len() - 1];
    let hier_ratio = hier_medians[hier_medians.len() - 1] / hier_medians[0].max(1e-9);
    let megh_ratio = megh_medians[megh_medians.len() - 1] / megh_medians[0].max(1e-9);
    println!("hier_scale [{label}]: decide median, {first} -> {last} hosts");
    for (i, &m) in HOSTS.iter().enumerate() {
        println!(
            "  {m:6} hosts: hier {:8.0} ns   flat Megh {:8.0} ns",
            hier_medians[i], megh_medians[i]
        );
    }
    println!("  hier grows {hier_ratio:.2}x, flat Megh grows {megh_ratio:.2}x");
    println!("  series: {out} ({} snapshot(s))", series.len());
    if hier_ratio > 2.0 {
        eprintln!("hier_scale: FAIL — hierarchical decide median grew more than 2x");
        std::process::exit(1);
    }
}
