//! Extension experiment: the Q-learning comparison the paper ran but
//! omitted "due to Q-learning's dependence on offline training".
//!
//! Protocol: train tabular Q-learning offline on one week of the
//! PlanetLab-like workload, evaluate everything on a *different* week
//! (same family, different seed). Megh and THR-MMT see the evaluation
//! week cold.
//!
//! Usage: `cargo run -p megh-bench --release --bin ext_qlearning [--full]`

use megh_baselines::{MmtFlavor, MmtScheduler, QLearningConfig, QLearningScheduler};
use megh_bench::{
    ensure_results_dir, format_table, planetlab_experiment, run_megh, run_scheduler,
    scale_from_args, write_json, Scale,
};
use megh_sim::{Simulation, SummaryReport};
use megh_trace::PlanetLabConfig;

fn main() {
    let scale = scale_from_args();
    let (config, eval_trace) = planetlab_experiment(scale, 4242);
    let episodes = match scale {
        Scale::Reduced => 5,
        Scale::Full => 25,
    };
    eprintln!(
        "ext_qlearning: {} hosts, {} VMs, {} steps, {episodes} training episodes",
        config.pms.len(),
        config.vms.len(),
        eval_trace.n_steps()
    );

    // A disjoint training week from the same workload family.
    let train_trace = PlanetLabConfig::new(config.vms.len(), 77).generate(7);
    let train_sim = Simulation::new(config.clone(), train_trace).expect("valid setup");

    let mut reports: Vec<SummaryReport> = Vec::new();

    let cold = run_scheduler(
        &config,
        &eval_trace,
        QLearningScheduler::new(QLearningConfig::default()),
    )
    .expect("valid setup");
    let mut r = cold.report();
    r.scheduler = "Q-learn (cold)".into();
    reports.push(r);
    eprintln!("  cold Q-learning done");

    let mut trained = QLearningScheduler::new(QLearningConfig::default());
    trained.train(&train_sim, episodes);
    let trained_outcome = run_scheduler(&config, &eval_trace, trained).expect("valid setup");
    let mut r = trained_outcome.report();
    r.scheduler = "Q-learn (train)".into();
    reports.push(r);
    eprintln!("  trained Q-learning done");

    reports.push(
        run_scheduler(&config, &eval_trace, MmtScheduler::new(MmtFlavor::Thr))
            .expect("valid setup")
            .report(),
    );
    eprintln!("  THR-MMT done");
    reports.push(
        run_megh(&config, &eval_trace, 4242)
            .expect("valid setup")
            .report(),
    );
    eprintln!("  Megh done");

    println!(
        "{}",
        format_table("Extension — offline Q-learning vs online Megh", &reports)
    );
    let dir = ensure_results_dir().expect("results dir");
    write_json(dir.join("ext_qlearning.json"), &reports).expect("write results");
    println!("wrote results/ext_qlearning.json");
}
