//! Table 3: performance evaluation for the Google Cluster workload.
//!
//! Usage: `cargo run -p megh-bench --release --bin table3_google [--full]`

use megh_bench::{
    ensure_results_dir, format_table, google_experiment, run_all_mmt, run_megh, scale_from_args,
    write_json,
};

fn main() {
    let scale = scale_from_args();
    let (config, trace) = google_experiment(scale, 43);
    eprintln!(
        "table3: {} hosts, {} VMs, {} steps ({scale:?})",
        config.pms.len(),
        config.vms.len(),
        trace.n_steps()
    );

    let mut reports = Vec::new();
    for outcome in run_all_mmt(&config, &trace).expect("valid setup") {
        eprintln!("  {} done", outcome.scheduler());
        reports.push(outcome.report());
    }
    let megh = run_megh(&config, &trace, 43).expect("valid setup");
    eprintln!("  {} done", megh.scheduler());
    reports.push(megh.report());

    println!(
        "{}",
        format_table(
            "Table 3 — Performance Evaluation for Google Cluster",
            &reports
        )
    );

    let dir = ensure_results_dir().expect("results dir");
    write_json(dir.join("table3_google.json"), &reports).expect("write results");
    eprintln!("wrote results/table3_google.json");
}
