//! Table 3: performance evaluation for the Google Cluster workload.
//!
//! Prints the paper's single-run columns followed by a "mean ± std over
//! seeds" sweep table. The MMT baselines take no RNG seed, so they run
//! once and replicate across the sweep (std 0); Megh is re-run per seed.
//!
//! Usage: `cargo run -p megh-bench --release --bin table3_google
//! [--full] [--seeds N] [--threads T]`

use megh_bench::{
    ensure_results_dir, format_sweep_table, format_table, google_experiment, replicate_sweep,
    run_all_mmt, run_megh, scale_from_args, sweep_megh, usize_flag_from_args, write_json,
};

fn main() {
    let scale = scale_from_args();
    let n_seeds = usize_flag_from_args("--seeds", 3);
    let threads = usize_flag_from_args("--threads", 1);
    let base_seed = 43u64;
    let (config, trace) = google_experiment(scale, base_seed);
    eprintln!(
        "table3: {} hosts, {} VMs, {} steps ({scale:?}), {n_seeds} seed(s)",
        config.pms.len(),
        config.vms.len(),
        trace.n_steps()
    );
    let seeds: Vec<u64> = (0..n_seeds as u64).map(|i| base_seed + i).collect();

    let mut reports = Vec::new();
    let mut sweeps = Vec::new();
    for outcome in run_all_mmt(&config, &trace).expect("valid setup") {
        eprintln!("  {} done", outcome.scheduler());
        reports.push(outcome.report());
        sweeps.push(replicate_sweep(&outcome, &seeds));
    }
    let megh_sweep = sweep_megh(&config, &trace, &seeds, threads).expect("valid setup");
    eprintln!("  {} done ({} seeds)", megh_sweep.scheduler, n_seeds);
    // The classic single-run column is the base seed — the sweep's
    // seed-ordered first slot, so the table matches earlier revisions.
    let megh = run_megh(&config, &trace, base_seed).expect("valid setup");
    reports.push(megh.report());
    sweeps.push(megh_sweep);

    println!(
        "{}",
        format_table(
            "Table 3 — Performance Evaluation for Google Cluster",
            &reports
        )
    );
    println!(
        "{}",
        format_sweep_table(
            &format!(
                "Table 3 (sweep) — seeds {base_seed}..{}",
                base_seed + n_seeds as u64 - 1
            ),
            &sweeps
        )
    );

    let dir = ensure_results_dir().expect("results dir");
    write_json(dir.join("table3_google.json"), &reports).expect("write results");
    write_json(dir.join("table3_google_sweep.json"), &sweeps).expect("write sweep results");
    eprintln!("wrote results/table3_google.json and results/table3_google_sweep.json");
}
