//! Figure 7: growth of the non-zero elements in Megh's Q-table with time
//! and with the number of PMs (N = M, as in the paper).
//!
//! Usage: `cargo run -p megh-bench --release --bin fig7_qtable_growth [--full]`

use megh_bench::{ensure_results_dir, scale_from_args, write_csv, MeghProbe, Scale};
use megh_core::{MeghAgent, MeghConfig};
use megh_sim::{DataCenterConfig, InitialPlacement, Simulation};
use megh_trace::PlanetLabConfig;

fn main() {
    let scale = scale_from_args();
    let (sizes, steps): (Vec<usize>, usize) = match scale {
        Scale::Reduced => (vec![100, 200, 300], 600),
        Scale::Full => (vec![100, 200, 400, 800], 2016),
    };
    eprintln!("fig7: sizes {sizes:?} (N = M), {steps} steps");

    let mut columns: Vec<Vec<usize>> = Vec::new();
    for &m in &sizes {
        let mut config = DataCenterConfig::paper_planetlab(m, m);
        config.initial_placement = InitialPlacement::DemandPacked;
        let trace = PlanetLabConfig::new(m, m as u64).generate_steps(steps);
        let sim = Simulation::new(config, trace).expect("valid setup");
        // §6.1: Megh may migrate up to 2 % of VMs per step — the number
        // of actions (and hence Q-table fill-in) per step scales with
        // the fleet, which is Figure 7's vertical shift with M.
        let mut megh_cfg = MeghConfig::paper_defaults(m, m);
        megh_cfg.actions_per_step = ((0.02 * m as f64).ceil() as usize).max(1);
        let mut probe = MeghProbe::new(MeghAgent::new(megh_cfg));
        sim.run(&mut probe);
        eprintln!(
            "  M=N={m}: final nnz {}",
            probe.qtable_nnz_series().last().copied().unwrap_or(0)
        );
        columns.push(probe.qtable_nnz_series().to_vec());
    }

    let dir = ensure_results_dir().expect("results dir");
    let mut headers: Vec<String> = vec!["step".into()];
    headers.extend(sizes.iter().map(|m| format!("nnz_m{m}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows = (0..steps).map(|t| {
        let mut row = vec![t as f64];
        for col in &columns {
            row.push(col.get(t).copied().unwrap_or(0) as f64);
        }
        row
    });
    write_csv(dir.join("fig7_qtable_growth.csv"), &header_refs, rows).expect("fig7");

    // Shape checks: linear growth in t, monotone shift with M.
    println!("Figure 7 — Q-table non-zeros over time");
    for (m, col) in sizes.iter().zip(&columns) {
        let half = col[col.len() / 2] as f64;
        let full = *col.last().unwrap() as f64;
        println!(
            "  M=N={m}: nnz(t/2) = {half}, nnz(t) = {full}, ratio {:.2} (≈2 ⇒ linear)",
            full / half.max(1.0)
        );
    }
    println!("wrote results/fig7_qtable_growth.csv");
}
