//! Diagnostic: where does THR-MMT's SLA cost come from?
//! (development aid, not a paper experiment)

use megh_baselines::{MmtFlavor, MmtScheduler};
use megh_bench::{planetlab_experiment, run_scheduler, Scale};

fn main() {
    let (config, trace) = planetlab_experiment(Scale::Reduced, 42);
    let outcome = run_scheduler(&config, &trace, MmtScheduler::new(MmtFlavor::Thr)).unwrap();

    let records = outcome.records();
    let deficit_steps = records.iter().filter(|r| r.sla_cost_usd > 0.0).count();
    println!("steps with SLA cost: {} / {}", deficit_steps, records.len());
    let over_steps = records.iter().filter(|r| r.overloaded_hosts > 0).count();
    println!("steps with >beta hosts: {over_steps}");
    let total_over: usize = records.iter().map(|r| r.overloaded_hosts).sum();
    println!("host-steps above beta: {total_over}");

    // Downtime distribution.
    let dt = outcome.vm_downtime_seconds();
    let rq = outcome.vm_requested_seconds();
    let fracs: Vec<f64> = dt.iter().zip(rq).map(|(d, r)| d / r.max(1.0)).collect();
    let major = fracs.iter().filter(|&&f| f > 0.001).count();
    let minor = fracs.iter().filter(|&&f| f > 0.0005 && f <= 0.001).count();
    println!(
        "VMs ending in major band: {major}, minor: {minor}, of {}",
        fracs.len()
    );
    let mean_dt: f64 = dt.iter().sum::<f64>() / dt.len() as f64;
    println!(
        "mean downtime {mean_dt:.1}s; max {:.1}s",
        dt.iter().cloned().fold(0.0, f64::max)
    );

    // Migration-induced downtime estimate: migrations × 0.1 × TM(~20s max).
    let report = outcome.report();
    println!(
        "migrations: {} (upper-bound migration downtime per VM: {:.0}s)",
        report.total_migrations,
        report.total_migrations as f64 * 0.1 * 20.0 / dt.len() as f64
    );
    println!(
        "energy ${:.1}, sla ${:.1}",
        report.energy_cost_usd, report.sla_cost_usd
    );
}
