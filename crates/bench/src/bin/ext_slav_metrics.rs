//! Extension experiment: the Beloglazov metric bundle (SLATAH, PDM,
//! SLAV, ESV) for every scheduler on the PlanetLab setup.
//!
//! The paper evaluates in dollars; the wider dynamic-consolidation
//! literature evaluates with these four composites. Reporting both
//! makes the reproduction comparable to the rest of the field.
//!
//! Usage: `cargo run -p megh-bench --release --bin ext_slav_metrics [--full]`

use megh_bench::{
    ensure_results_dir, planetlab_experiment, run_all_mmt, run_madvm, run_megh, scale_from_args,
    write_json,
};
use megh_sim::SlavMetrics;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    scheduler: String,
    slatah: f64,
    pdm: f64,
    slav: f64,
    energy_kwh: f64,
    esv: f64,
}

fn main() {
    let scale = scale_from_args();
    let (config, trace) = planetlab_experiment(scale, 42);
    eprintln!(
        "ext_slav: {} hosts, {} VMs, {} steps",
        config.pms.len(),
        config.vms.len(),
        trace.n_steps()
    );

    let mut outcomes = run_all_mmt(&config, &trace).expect("valid setup");
    outcomes.push(run_megh(&config, &trace, 42).expect("valid setup"));
    // MadVM only at reduced scale — it cannot complete the full fleet
    // in reasonable time, which is itself a §6.3 finding.
    if config.pms.len() <= 200 {
        outcomes.push(run_madvm(&config, &trace).expect("valid setup"));
    }

    let rows: Vec<Row> = outcomes
        .iter()
        .map(|o| {
            let m = SlavMetrics::from_run(o);
            Row {
                scheduler: o.scheduler().to_string(),
                slatah: m.slatah,
                pdm: m.pdm,
                slav: m.slav,
                energy_kwh: m.energy_kwh,
                esv: m.esv,
            }
        })
        .collect();

    println!("Extension — Beloglazov SLA metrics (PlanetLab)");
    println!(
        "{:<10} {:>9} {:>10} {:>11} {:>11} {:>11}",
        "scheduler", "SLATAH", "PDM", "SLAV", "energy kWh", "ESV"
    );
    for r in &rows {
        println!(
            "{:<10} {:>9.4} {:>10.6} {:>11.8} {:>11.2} {:>11.6}",
            r.scheduler, r.slatah, r.pdm, r.slav, r.energy_kwh, r.esv
        );
    }

    let dir = ensure_results_dir().expect("results dir");
    write_json(dir.join("ext_slav_metrics.json"), &rows).expect("write results");
    println!("wrote results/ext_slav_metrics.json");
}
