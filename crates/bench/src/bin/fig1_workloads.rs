//! Figure 1: workload characterisation.
//!
//! (a) PlanetLab workload dynamics — across-VM mean ± std per step;
//! (b) Google Cluster task-duration histogram on a log axis.
//!
//! Usage: `cargo run -p megh-bench --release --bin fig1_workloads [--full]`

use megh_bench::{ensure_results_dir, scale_from_args, write_csv};
use megh_trace::{CullenFrey, DurationStats, GoogleConfig, PlanetLabConfig, TraceStats};

fn main() {
    let scale = scale_from_args();
    let (_, n_pl, days) = scale.planetlab();
    let (_, n_g, _) = scale.google();
    let dir = ensure_results_dir().expect("results dir");

    // (a) PlanetLab dynamics.
    let planetlab = PlanetLabConfig::new(n_pl, 42).generate(days);
    let stats = TraceStats::compute(&planetlab);
    println!("Figure 1(a) — PlanetLab-like workload dynamics");
    println!(
        "  VMs: {}, steps: {}",
        planetlab.n_vms(),
        planetlab.n_steps()
    );
    println!(
        "  overall mean {:.1} %, std {:.1} %, range [{:.1}, {:.1}] %",
        stats.overall_mean, stats.overall_std, stats.overall_min, stats.overall_max
    );
    // §6.2's Cullen–Frey check: no standard parametric fit.
    if let Some(cf) = CullenFrey::of_trace(&planetlab) {
        println!(
            "  Cullen–Frey: skew² {:.2}, kurtosis {:.2} — matches a standard distribution: {}",
            cf.skewness_squared,
            cf.kurtosis,
            cf.matches_a_standard_distribution(0.5)
        );
    }
    let rows = stats
        .per_step_mean
        .iter()
        .zip(&stats.per_step_std)
        .enumerate()
        .map(|(t, (&m, &s))| vec![t as f64, m, s]);
    write_csv(
        dir.join("fig1a_planetlab_dynamics.csv"),
        &["step", "mean", "std"],
        rows,
    )
    .expect("write fig1a");

    // (b) Google task durations.
    let google_cfg = GoogleConfig::new(n_g, 43);
    let durations = google_cfg.sample_task_durations(20_000);
    let hist = DurationStats::from_durations(&durations, 4);
    println!("Figure 1(b) — Google-Cluster-like task durations");
    println!(
        "  min {:.1} s, max {:.0} s, spanning {:.1} decades",
        hist.min_seconds,
        hist.max_seconds,
        hist.decades_spanned()
    );
    let rows = hist
        .bucket_edges_log10
        .iter()
        .zip(&hist.counts)
        .map(|(&edge, &count)| vec![edge, count as f64]);
    write_csv(
        dir.join("fig1b_google_durations.csv"),
        &["log10_seconds", "count"],
        rows,
    )
    .expect("write fig1b");

    println!("wrote results/fig1a_planetlab_dynamics.csv, results/fig1b_google_durations.csv");
}
