//! Ablation: the CPU oversubscription ratio — the reproduction's main
//! calibration knob (DESIGN.md §7) — swept across its plausible range.
//!
//! The ratio bounds how hard the *initial packing* may reserve hosts;
//! MMT's dynamic consolidation then packs by demand regardless. The
//! sweep shows how the Megh-vs-THR gap and the cost composition depend
//! on this choice, i.e. how robust the headline result is to the one
//! parameter the paper does not specify.
//!
//! Usage: `cargo run -p megh-bench --release --bin ablation_oversubscription [--full]`

use megh_baselines::{MmtFlavor, MmtScheduler};
use megh_bench::{ensure_results_dir, run_megh, run_scheduler, scale_from_args, write_csv, Scale};
use megh_sim::{DataCenterConfig, InitialPlacement};
use megh_trace::PlanetLabConfig;

fn main() {
    let scale = scale_from_args();
    let (m, n, days) = match scale {
        Scale::Reduced => (80usize, 105usize, 3usize),
        Scale::Full => (800, 1052, 7),
    };
    let trace = PlanetLabConfig::new(n, 42).generate(days);
    eprintln!(
        "ablation_oversubscription: {m} hosts, {n} VMs, {} steps",
        trace.n_steps()
    );

    let dir = ensure_results_dir().expect("results dir");
    let mut rows = Vec::new();
    println!(
        "{:<7} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "ratio", "THR USD", "THR SLA", "Megh USD", "Megh SLA", "Megh wins"
    );
    for ratio in [1.0f64, 1.5, 2.0, 3.0, 4.0] {
        let mut config = DataCenterConfig::paper_planetlab(m, n);
        config.initial_placement = InitialPlacement::DemandPacked;
        config.oversubscription_ratio = ratio;
        let thr = run_scheduler(&config, &trace, MmtScheduler::new(MmtFlavor::Thr))
            .expect("valid setup")
            .report();
        let megh = run_megh(&config, &trace, 42).expect("valid setup").report();
        println!(
            "{:<7} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>10}",
            ratio,
            thr.total_cost_usd,
            thr.sla_cost_usd,
            megh.total_cost_usd,
            megh.sla_cost_usd,
            megh.total_cost_usd < thr.total_cost_usd
        );
        rows.push(vec![
            ratio,
            thr.total_cost_usd,
            thr.sla_cost_usd,
            megh.total_cost_usd,
            megh.sla_cost_usd,
        ]);
    }
    write_csv(
        dir.join("ablation_oversubscription.csv"),
        &["ratio", "thr_total", "thr_sla", "megh_total", "megh_sla"],
        rows,
    )
    .expect("write results");
    println!("wrote results/ablation_oversubscription.csv");
}
