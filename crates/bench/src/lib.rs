//! The experiment harness: shared machinery behind the per-table and
//! per-figure binaries (see DESIGN.md §4 for the experiment index).
//!
//! Every binary follows the same pattern: build the §6 experimental
//! setup at either *reduced* scale (default — minutes on a laptop,
//! shapes preserved) or *full* paper scale (`--full`), run the relevant
//! schedulers, print the paper-style table, and drop machine-readable
//! CSV/JSON into `results/`.
//!
//! # Examples
//!
//! ```
//! use megh_bench::{planetlab_experiment, Scale};
//!
//! let (config, trace) = planetlab_experiment(Scale::Reduced, 1);
//! assert!(config.pms.len() >= 100);
//! assert_eq!(trace.n_vms(), config.vms.len());
//! ```

// No unsafe code anywhere in this crate (also enforced by `cargo run -p lint`).
#![forbid(unsafe_code)]

mod diff;
mod plot;
mod probe;
mod report;
mod runner;
mod setup;

pub use diff::{
    diff_snapshots, fatal_failures, render_diff, BenchResult, BenchSnapshot, DiffLine, Verdict,
};
pub use plot::LineChart;
pub use probe::MeghProbe;
pub use report::{
    ensure_results_dir, format_sweep_table, format_table, write_csv, write_json, ResultsError,
};
pub use runner::{
    replicate_sweep, run_all_mmt, run_madvm, run_megh, run_scheduler, sweep_megh, SeriesBundle,
};
pub use setup::{
    google_experiment, madvm_subset_experiment, planetlab_experiment, scale_from_args,
    usize_flag_from_args, Scale,
};
