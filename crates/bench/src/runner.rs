//! Scheduler runners shared by the experiment binaries.

use megh_baselines::{MadVmConfig, MadVmScheduler, MmtFlavor, MmtScheduler};
use megh_core::{MeghAgent, MeghConfig};
use megh_sim::{
    run_sweep, DataCenterConfig, Scheduler, SimError, Simulation, SimulationOutcome, StepRecord,
    SummaryReport, SweepReport,
};
use megh_trace::WorkloadTrace;

/// Runs one scheduler over the setup and returns the outcome.
///
/// # Errors
///
/// Returns [`SimError`] when the configuration and trace are
/// inconsistent.
pub fn run_scheduler<S: Scheduler>(
    config: &DataCenterConfig,
    trace: &WorkloadTrace,
    scheduler: S,
) -> Result<SimulationOutcome, SimError> {
    Ok(Simulation::new(config.clone(), trace.clone())?.run(scheduler))
}

/// Runs all five MMT flavors (Tables 2–3 columns, left to right).
///
/// # Errors
///
/// Returns [`SimError`] when the configuration and trace are
/// inconsistent.
pub fn run_all_mmt(
    config: &DataCenterConfig,
    trace: &WorkloadTrace,
) -> Result<Vec<SimulationOutcome>, SimError> {
    MmtFlavor::ALL
        .iter()
        .map(|&flavor| run_scheduler(config, trace, MmtScheduler::new(flavor)))
        .collect()
}

/// Runs Megh with the paper defaults for the setup's dimensions.
///
/// # Errors
///
/// Returns [`SimError`] when the configuration and trace are
/// inconsistent.
pub fn run_megh(
    config: &DataCenterConfig,
    trace: &WorkloadTrace,
    seed: u64,
) -> Result<SimulationOutcome, SimError> {
    let mut megh_cfg = MeghConfig::paper_defaults(config.vms.len(), config.pms.len());
    megh_cfg.seed = seed;
    run_scheduler(config, trace, MeghAgent::new(megh_cfg))
}

/// Sweeps Megh (paper defaults) over `seeds`, fanned across `threads`
/// worker threads — the "mean ± std over seeds" rows of Tables 2–3.
///
/// # Errors
///
/// Returns [`SimError`] when the configuration and trace are
/// inconsistent.
pub fn sweep_megh(
    config: &DataCenterConfig,
    trace: &WorkloadTrace,
    seeds: &[u64],
    threads: usize,
) -> Result<SweepReport, SimError> {
    let sim = Simulation::new(config.clone(), trace.clone())?;
    let outcomes = run_sweep(&sim, seeds, threads, |seed| {
        let mut megh_cfg = MeghConfig::paper_defaults(config.vms.len(), config.pms.len());
        megh_cfg.seed = seed;
        MeghAgent::new(megh_cfg)
    });
    Ok(SweepReport::from_outcomes(seeds, &outcomes))
}

/// Expands a seed-invariant scheduler's single outcome into a sweep
/// row. The MMT and MadVM baselines take no RNG seed, so every per-seed
/// run is identical by construction — running them once and replicating
/// keeps the table's columns comparable (their std of 0 documents the
/// invariance) without re-simulating the same trajectory N times.
pub fn replicate_sweep(outcome: &SimulationOutcome, seeds: &[u64]) -> SweepReport {
    let outcomes = vec![outcome.clone(); seeds.len()];
    SweepReport::from_outcomes(seeds, &outcomes)
}

/// Runs MadVM with its defaults.
///
/// # Errors
///
/// Returns [`SimError`] when the configuration and trace are
/// inconsistent.
pub fn run_madvm(
    config: &DataCenterConfig,
    trace: &WorkloadTrace,
) -> Result<SimulationOutcome, SimError> {
    run_scheduler(config, trace, MadVmScheduler::new(MadVmConfig::default()))
}

/// Aligned per-step series from several outcomes — the data behind the
/// four panels of Figures 2–5 (per-step cost, cumulative migrations,
/// active hosts, execution time).
#[derive(Debug, Clone)]
pub struct SeriesBundle {
    /// Scheduler names, column order of the CSV.
    pub names: Vec<String>,
    /// `records[scheduler][step]`.
    pub records: Vec<Vec<StepRecord>>,
}

impl SeriesBundle {
    /// Builds a bundle from outcomes.
    pub fn new(outcomes: &[&SimulationOutcome]) -> Self {
        Self {
            names: outcomes.iter().map(|o| o.scheduler().to_string()).collect(),
            records: outcomes.iter().map(|o| o.records().to_vec()).collect(),
        }
    }

    /// Number of steps in the shortest series.
    pub fn steps(&self) -> usize {
        self.records.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// CSV rows: `step, <metric for each scheduler>...` using the
    /// provided accessor.
    pub fn rows(&self, metric: impl Fn(&StepRecord) -> f64) -> Vec<Vec<f64>> {
        (0..self.steps())
            .map(|t| {
                let mut row = vec![t as f64];
                for series in &self.records {
                    row.push(metric(&series[t]));
                }
                row
            })
            .collect()
    }

    /// Header row for [`SeriesBundle::rows`] CSVs.
    pub fn headers(&self) -> Vec<String> {
        let mut h = vec!["step".to_string()];
        h.extend(self.names.iter().cloned());
        h
    }

    /// Summaries for all schedulers in the bundle.
    pub fn reports(&self) -> Vec<SummaryReport> {
        self.names
            .iter()
            .zip(&self.records)
            .map(|(name, records)| SummaryReport::from_records(name, records))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{planetlab_experiment, Scale};
    use megh_trace::PlanetLabConfig;

    fn tiny_setup() -> (DataCenterConfig, WorkloadTrace) {
        let (mut config, _) = planetlab_experiment(Scale::Reduced, 1);
        config.pms.truncate(4);
        config.vms.truncate(8);
        let trace = PlanetLabConfig::new(8, 1).generate_steps(20);
        (config, trace)
    }

    #[test]
    fn all_runners_produce_outcomes() {
        let (config, trace) = tiny_setup();
        let mmt = run_all_mmt(&config, &trace).unwrap();
        assert_eq!(mmt.len(), 5);
        let megh = run_megh(&config, &trace, 7).unwrap();
        assert_eq!(megh.scheduler(), "Megh");
        let madvm = run_madvm(&config, &trace).unwrap();
        assert_eq!(madvm.scheduler(), "MadVM");
    }

    #[test]
    fn sweep_helpers_aggregate_and_replicate() {
        let (config, trace) = tiny_setup();
        let seeds = [7u64, 8, 9];
        let sweep = sweep_megh(&config, &trace, &seeds, 2).unwrap();
        assert_eq!(sweep.scheduler, "Megh");
        assert_eq!(sweep.runs.len(), 3);
        assert_eq!(
            sweep.runs.iter().map(|r| r.seed).collect::<Vec<_>>(),
            seeds,
            "runs stay in seed order regardless of thread interleaving"
        );

        let madvm = run_madvm(&config, &trace).unwrap();
        let replicated = replicate_sweep(&madvm, &seeds);
        assert_eq!(replicated.runs.len(), 3);
        assert_eq!(
            replicated.std_total_cost_usd, 0.0,
            "a seed-invariant scheduler replicates with zero spread"
        );
        assert_eq!(
            replicated.mean_total_cost_usd,
            madvm.report().total_cost_usd
        );
    }

    #[test]
    fn series_bundle_aligns_columns() {
        let (config, trace) = tiny_setup();
        let a = run_megh(&config, &trace, 7).unwrap();
        let b = run_madvm(&config, &trace).unwrap();
        let bundle = SeriesBundle::new(&[&a, &b]);
        assert_eq!(bundle.headers(), vec!["step", "Megh", "MadVM"]);
        let rows = bundle.rows(|r| r.total_cost_usd);
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[0].len(), 3);
        assert_eq!(rows[5][0], 5.0);
        let reports = bundle.reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].scheduler, "Megh");
    }
}
