//! A probe wrapper capturing Megh's internal growth for Figure 7.

use megh_core::MeghAgent;
use megh_sim::{DataCenterView, MigrationRequest, Scheduler, StepFeedback};

/// Wraps a [`MeghAgent`] and records its Q-table size after every
/// decision — the series Figure 7 plots against time.
#[derive(Debug, Clone)]
pub struct MeghProbe {
    agent: MeghAgent,
    qtable_nnz_series: Vec<usize>,
    theta_nnz_series: Vec<usize>,
}

impl MeghProbe {
    /// Wraps an agent.
    pub fn new(agent: MeghAgent) -> Self {
        Self {
            agent,
            qtable_nnz_series: Vec::new(),
            theta_nnz_series: Vec::new(),
        }
    }

    /// Per-step explicit non-zeros of the learned operator.
    pub fn qtable_nnz_series(&self) -> &[usize] {
        &self.qtable_nnz_series
    }

    /// Per-step non-zeros of θ.
    pub fn theta_nnz_series(&self) -> &[usize] {
        &self.theta_nnz_series
    }

    /// The wrapped agent.
    pub fn agent(&self) -> &MeghAgent {
        &self.agent
    }

    /// Unwraps the agent.
    pub fn into_agent(self) -> MeghAgent {
        self.agent
    }
}

impl Scheduler for MeghProbe {
    fn name(&self) -> &str {
        "Megh"
    }

    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
        let requests = self.agent.decide(view);
        self.qtable_nnz_series.push(self.agent.qtable_nnz());
        self.theta_nnz_series.push(self.agent.theta_nnz());
        requests
    }

    fn observe(&mut self, feedback: &StepFeedback) {
        self.agent.observe(feedback);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megh_core::MeghConfig;
    use megh_sim::{DataCenterConfig, Simulation};
    use megh_trace::PlanetLabConfig;

    #[test]
    fn probe_records_monotone_growth() {
        let trace = PlanetLabConfig::new(8, 1).generate_steps(50);
        let sim = Simulation::new(DataCenterConfig::paper_planetlab(4, 8), trace).unwrap();
        let mut probe = MeghProbe::new(MeghAgent::new(MeghConfig::paper_defaults(8, 4)));
        sim.run(&mut probe);
        let series = probe.qtable_nnz_series();
        assert_eq!(series.len(), 50);
        assert!(series.windows(2).all(|w| w[0] <= w[1]), "nnz must grow");
        assert!(*series.last().unwrap() > 0);
    }
}
