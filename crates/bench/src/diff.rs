//! Bench-regression diffing over the tracked snapshot series.
//!
//! `BENCH_decision_latency.json` (repo root) accumulates one
//! `{snapshot, results}` object per PR. This module compares the latest
//! two snapshots probe by probe and classifies each probe's movement
//! against a noise threshold, so CI can warn about latency regressions
//! without making a microbenchmark the arbiter of a merge.
//!
//! Medians are compared rather than means: the snapshots are taken on
//! shared, noisy machines where a single descheduling blows up the mean
//! but leaves the median representative. When both snapshots carry the
//! repetition quartiles (`p25_ns`/`p75_ns`), the verdict also consults
//! dispersion: a median that moved past the noise threshold while the
//! two interquartile ranges still overlap is reclassified as
//! [`Verdict::Unchanged`] — the distributions are not separable, so the
//! movement is machine noise, not a code change. Latency verdicts are
//! therefore advisory. What *is* a gate ([`fatal_failures`], and a
//! non-zero exit from `bench-diff` in `ci.sh`) are the
//! exactly-reproducible checks: a probe disappearing from the series
//! (snapshot shape) and heap allocation counts growing — both are
//! deterministic properties of the code, not of the machine the
//! snapshot was taken on.

use serde::{Deserialize, Serialize};

/// One probe's summary inside a snapshot (the criterion shim's schema).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchResult {
    /// Probe id, e.g. `"Megh/50x66"`.
    pub id: String,
    /// Mean iteration time, nanoseconds.
    pub mean_ns: f64,
    /// Median iteration time, nanoseconds.
    pub median_ns: f64,
    /// Fastest sample, nanoseconds.
    pub min_ns: f64,
    /// Slowest sample, nanoseconds.
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Heap allocations per iteration for probes that count them via
    /// `CountingAllocator` (`None` for latency-only probes and for
    /// snapshots recorded before the field existed). Unlike latencies,
    /// allocation counts are exactly reproducible, so any increase is a
    /// fatal diff, not a warning.
    pub allocs: Option<u64>,
    /// 99th-percentile sample, nanoseconds — recorded by probes that
    /// measure tail latency under load (`None` for older snapshots and
    /// probes that only track central tendency). Advisory, like every
    /// latency figure.
    pub p99_ns: Option<f64>,
    /// Sustained operations per second over the probe's wall-clock
    /// window, for throughput probes (`None` otherwise). Advisory.
    pub throughput_per_sec: Option<f64>,
    /// 25th-percentile sample, nanoseconds (`None` for snapshots
    /// recorded before the quartile fields existed). Together with
    /// `p75_ns` this carries the repetition spread, letting the diff
    /// judge overlap instead of comparing two point medians.
    pub p25_ns: Option<f64>,
    /// 75th-percentile sample, nanoseconds (see `p25_ns`).
    pub p75_ns: Option<f64>,
}

impl BenchResult {
    /// The probe's interquartile range, when the snapshot recorded one.
    /// Degenerate ranges (p25 > p75, NaN) come back as `None` so a
    /// malformed snapshot cannot rescue a verdict.
    fn iqr(&self) -> Option<(f64, f64)> {
        match (self.p25_ns, self.p75_ns) {
            (Some(lo), Some(hi)) if lo <= hi => Some((lo, hi)),
            _ => None,
        }
    }
}

/// One PR's worth of probe results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSnapshot {
    /// Snapshot label, e.g. `"PR2"`.
    pub snapshot: String,
    /// Probe results recorded for that PR.
    pub results: Vec<BenchResult>,
}

/// How one probe moved between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Median grew by more than the noise threshold.
    Regressed,
    /// Median shrank by more than the noise threshold.
    Improved,
    /// Movement within the noise threshold.
    Unchanged,
    /// Probe exists only in the newer snapshot.
    Added,
    /// Probe exists only in the older snapshot.
    Removed,
}

/// One probe's diff line between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// Probe id.
    pub id: String,
    /// Median in the older snapshot (None when [`Verdict::Added`]).
    pub prev_median_ns: Option<f64>,
    /// Median in the newer snapshot (None when [`Verdict::Removed`]).
    pub cur_median_ns: Option<f64>,
    /// `cur/prev` ratio when both sides exist.
    pub ratio: Option<f64>,
    /// Classification against the noise threshold.
    pub verdict: Verdict,
    /// The median crossed the noise threshold but the two interquartile
    /// ranges overlap, so the verdict was reclassified as
    /// [`Verdict::Unchanged`]. Only ever true when both snapshots carry
    /// quartiles.
    pub iqr_rescued: bool,
}

/// Compares two snapshots probe by probe.
///
/// `noise_frac` is the relative movement tolerated before a probe is
/// flagged (0.3 = ±30 %). Output order: every probe of `cur` in file
/// order, then probes only `prev` has.
pub fn diff_snapshots(prev: &BenchSnapshot, cur: &BenchSnapshot, noise_frac: f64) -> Vec<DiffLine> {
    let mut lines = Vec::new();
    for result in &cur.results {
        let before = prev.results.iter().find(|r| r.id == result.id);
        let line = match before {
            None => DiffLine {
                id: result.id.clone(),
                prev_median_ns: None,
                cur_median_ns: Some(result.median_ns),
                ratio: None,
                verdict: Verdict::Added,
                iqr_rescued: false,
            },
            Some(before) => {
                let ratio = if before.median_ns > 0.0 {
                    result.median_ns / before.median_ns
                } else {
                    f64::INFINITY
                };
                let mut verdict = if ratio > 1.0 + noise_frac {
                    Verdict::Regressed
                } else if ratio < 1.0 - noise_frac {
                    Verdict::Improved
                } else {
                    Verdict::Unchanged
                };
                // Dispersion check: a flagged median whose interquartile
                // ranges still overlap is not a separable distribution
                // shift — downgrade to Unchanged and say so.
                let mut iqr_rescued = false;
                if verdict != Verdict::Unchanged {
                    if let (Some((plo, phi)), Some((clo, chi))) = (before.iqr(), result.iqr()) {
                        if plo <= chi && clo <= phi {
                            verdict = Verdict::Unchanged;
                            iqr_rescued = true;
                        }
                    }
                }
                DiffLine {
                    id: result.id.clone(),
                    prev_median_ns: Some(before.median_ns),
                    cur_median_ns: Some(result.median_ns),
                    ratio: Some(ratio),
                    verdict,
                    iqr_rescued,
                }
            }
        };
        lines.push(line);
    }
    for before in &prev.results {
        if !cur.results.iter().any(|r| r.id == before.id) {
            lines.push(DiffLine {
                id: before.id.clone(),
                prev_median_ns: Some(before.median_ns),
                cur_median_ns: None,
                ratio: None,
                verdict: Verdict::Removed,
                iqr_rescued: false,
            });
        }
    }
    lines
}

/// The exactly-reproducible checks between two snapshots — the part of
/// the diff that gates CI. Returns one message per failure, empty when
/// the diff is clean.
///
/// Fatal conditions:
/// - a probe present in `prev` is missing from `cur` (the snapshot
///   shape shrank — probes must be removed deliberately, by rewriting
///   the series, not by a probe silently failing to run);
/// - a probe's allocation count grew, or a probe stopped reporting one
///   (`Some -> None`). Counts are deterministic, so there is no noise
///   threshold: one extra allocation is a real code change.
///
/// Latency movement never appears here — medians stay advisory.
pub fn fatal_failures(prev: &BenchSnapshot, cur: &BenchSnapshot) -> Vec<String> {
    let mut failures = Vec::new();
    for before in &prev.results {
        match cur.results.iter().find(|r| r.id == before.id) {
            None => failures.push(format!(
                "probe `{}` vanished: present in {}, missing in {}",
                before.id, prev.snapshot, cur.snapshot
            )),
            Some(after) => match (before.allocs, after.allocs) {
                (Some(a), Some(b)) if b > a => failures.push(format!(
                    "probe `{}` allocation count grew {} -> {}",
                    before.id, a, b
                )),
                (Some(a), None) => failures.push(format!(
                    "probe `{}` stopped reporting allocations (was {})",
                    before.id, a
                )),
                _ => {}
            },
        }
    }
    failures
}

/// Renders a diff as the table `bench-diff` prints, one probe per line,
/// with a trailing `warning:` line per regression (the greppable part).
pub fn render_diff(prev: &BenchSnapshot, cur: &BenchSnapshot, lines: &[DiffLine]) -> String {
    let mut out = format!(
        "bench-diff: {} -> {} (median ns per probe)\n{:<20} {:>12} {:>12} {:>8}  {}\n",
        prev.snapshot, cur.snapshot, "probe", prev.snapshot, cur.snapshot, "ratio", "verdict"
    );
    let fmt_ns = |v: Option<f64>| match v {
        Some(ns) => format!("{ns:.1}"),
        None => "-".to_string(),
    };
    for line in lines {
        let verdict = match line.verdict {
            Verdict::Regressed => "REGRESSED",
            Verdict::Improved => "improved",
            Verdict::Unchanged if line.iqr_rescued => "ok (IQR overlap)",
            Verdict::Unchanged => "ok",
            Verdict::Added => "added",
            Verdict::Removed => "removed",
        };
        out.push_str(&format!(
            "{:<20} {:>12} {:>12} {:>8}  {}\n",
            line.id,
            fmt_ns(line.prev_median_ns),
            fmt_ns(line.cur_median_ns),
            match line.ratio {
                Some(r) => format!("{r:.2}x"),
                None => "-".to_string(),
            },
            verdict
        ));
    }
    for line in lines {
        if line.verdict == Verdict::Regressed {
            out.push_str(&format!(
                "warning: {} regressed {:.2}x ({} -> {} median ns)\n",
                line.id,
                line.ratio.unwrap_or(f64::NAN),
                fmt_ns(line.prev_median_ns),
                fmt_ns(line.cur_median_ns),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(id: &str, median_ns: f64) -> BenchResult {
        BenchResult {
            id: id.to_string(),
            mean_ns: median_ns,
            median_ns,
            min_ns: median_ns * 0.9,
            max_ns: median_ns * 1.2,
            samples: 20,
            allocs: None,
            p99_ns: None,
            throughput_per_sec: None,
            p25_ns: None,
            p75_ns: None,
        }
    }

    fn result_with_iqr(id: &str, median_ns: f64, p25_ns: f64, p75_ns: f64) -> BenchResult {
        BenchResult {
            p25_ns: Some(p25_ns),
            p75_ns: Some(p75_ns),
            ..result(id, median_ns)
        }
    }

    fn result_with_allocs(id: &str, allocs: Option<u64>) -> BenchResult {
        BenchResult {
            allocs,
            ..result(id, 100.0)
        }
    }

    fn snapshot(name: &str, results: Vec<BenchResult>) -> BenchSnapshot {
        BenchSnapshot {
            snapshot: name.to_string(),
            results,
        }
    }

    #[test]
    fn classifies_regression_improvement_and_noise() {
        let prev = snapshot(
            "PR1",
            vec![result("a", 100.0), result("b", 100.0), result("c", 100.0)],
        );
        let cur = snapshot(
            "PR2",
            vec![
                result("a", 150.0), // +50 % > 30 % noise
                result("b", 60.0),  // -40 %
                result("c", 120.0), // +20 % inside noise
            ],
        );
        let lines = diff_snapshots(&prev, &cur, 0.3);
        assert_eq!(lines[0].verdict, Verdict::Regressed);
        assert_eq!(lines[1].verdict, Verdict::Improved);
        assert_eq!(lines[2].verdict, Verdict::Unchanged);
        assert!((lines[0].ratio.unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn added_and_removed_probes_are_reported() {
        let prev = snapshot("PR1", vec![result("old", 10.0), result("both", 10.0)]);
        let cur = snapshot("PR2", vec![result("both", 10.0), result("new", 10.0)]);
        let lines = diff_snapshots(&prev, &cur, 0.3);
        let find = |id: &str| lines.iter().find(|l| l.id == id).unwrap();
        assert_eq!(find("new").verdict, Verdict::Added);
        assert_eq!(find("old").verdict, Verdict::Removed);
        assert_eq!(find("both").verdict, Verdict::Unchanged);
    }

    #[test]
    fn render_emits_greppable_warning_lines() {
        let prev = snapshot("PR1", vec![result("hot", 100.0)]);
        let cur = snapshot("PR2", vec![result("hot", 200.0)]);
        let lines = diff_snapshots(&prev, &cur, 0.3);
        let text = render_diff(&prev, &cur, &lines);
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("warning: hot regressed 2.00x"), "{text}");
    }

    #[test]
    fn overlapping_iqrs_rescue_a_flagged_median() {
        // +50 % median movement, but wide spreads that still overlap:
        // the distributions are not separable, so no flag.
        let prev = snapshot("PR1", vec![result_with_iqr("hot", 100.0, 80.0, 160.0)]);
        let cur = snapshot("PR2", vec![result_with_iqr("hot", 150.0, 120.0, 210.0)]);
        let lines = diff_snapshots(&prev, &cur, 0.3);
        assert_eq!(lines[0].verdict, Verdict::Unchanged);
        assert!(lines[0].iqr_rescued);
        let text = render_diff(&prev, &cur, &lines);
        assert!(text.contains("ok (IQR overlap)"), "{text}");
        assert!(!text.contains("warning:"), "{text}");
    }

    #[test]
    fn disjoint_iqrs_keep_the_regression_flag() {
        let prev = snapshot("PR1", vec![result_with_iqr("hot", 100.0, 95.0, 105.0)]);
        let cur = snapshot("PR2", vec![result_with_iqr("hot", 150.0, 145.0, 155.0)]);
        let lines = diff_snapshots(&prev, &cur, 0.3);
        assert_eq!(lines[0].verdict, Verdict::Regressed);
        assert!(!lines[0].iqr_rescued);
    }

    #[test]
    fn missing_or_degenerate_quartiles_fall_back_to_point_medians() {
        // Old snapshots without quartiles: the point-median verdict
        // stands, on either side of the diff.
        let old = snapshot("PR1", vec![result("hot", 100.0)]);
        let new = snapshot("PR2", vec![result_with_iqr("hot", 150.0, 120.0, 210.0)]);
        assert_eq!(
            diff_snapshots(&old, &new, 0.3)[0].verdict,
            Verdict::Regressed
        );
        assert_eq!(
            diff_snapshots(&new, &old, 0.3)[0].verdict,
            Verdict::Improved
        );

        // An inverted quartile pair is malformed and must not rescue.
        let bad = snapshot("PR2", vec![result_with_iqr("hot", 150.0, 210.0, 120.0)]);
        let prev = snapshot("PR1", vec![result_with_iqr("hot", 100.0, 80.0, 160.0)]);
        assert_eq!(
            diff_snapshots(&prev, &bad, 0.3)[0].verdict,
            Verdict::Regressed
        );
    }

    #[test]
    fn iqr_rescue_never_touches_the_fatal_lane() {
        // Quartiles are advisory: alloc growth stays fatal even when
        // the latency spread overlaps completely.
        let prev = snapshot(
            "PR1",
            vec![BenchResult {
                allocs: Some(3),
                ..result_with_iqr("p", 100.0, 80.0, 160.0)
            }],
        );
        let cur = snapshot(
            "PR2",
            vec![BenchResult {
                allocs: Some(4),
                ..result_with_iqr("p", 100.0, 80.0, 160.0)
            }],
        );
        assert_eq!(fatal_failures(&prev, &cur).len(), 1);
    }

    #[test]
    fn zero_baseline_counts_as_regression_not_a_crash() {
        let prev = snapshot("PR1", vec![result("z", 0.0)]);
        let cur = snapshot("PR2", vec![result("z", 5.0)]);
        let lines = diff_snapshots(&prev, &cur, 0.3);
        assert_eq!(lines[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn vanished_probe_is_fatal_but_added_probe_is_not() {
        let prev = snapshot("PR1", vec![result("old", 10.0), result("both", 10.0)]);
        let cur = snapshot("PR2", vec![result("both", 10.0), result("new", 10.0)]);
        let failures = fatal_failures(&prev, &cur);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("`old` vanished"), "{failures:?}");
    }

    #[test]
    fn alloc_count_growth_is_fatal_without_a_noise_threshold() {
        let prev = snapshot("PR1", vec![result_with_allocs("p", Some(7))]);
        let cur = snapshot("PR2", vec![result_with_allocs("p", Some(8))]);
        let failures = fatal_failures(&prev, &cur);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("grew 7 -> 8"), "{failures:?}");
    }

    #[test]
    fn alloc_count_equal_or_shrinking_is_clean() {
        let prev = snapshot("PR1", vec![result_with_allocs("p", Some(7))]);
        for cur_allocs in [Some(7), Some(3)] {
            let cur = snapshot("PR2", vec![result_with_allocs("p", cur_allocs)]);
            assert!(fatal_failures(&prev, &cur).is_empty());
        }
    }

    #[test]
    fn dropping_alloc_instrumentation_is_fatal_but_gaining_it_is_not() {
        let counted = snapshot("A", vec![result_with_allocs("p", Some(7))]);
        let latency_only = snapshot("B", vec![result_with_allocs("p", None)]);
        let dropped = fatal_failures(&counted, &latency_only);
        assert_eq!(dropped.len(), 1, "{dropped:?}");
        assert!(dropped[0].contains("stopped reporting"), "{dropped:?}");
        assert!(fatal_failures(&latency_only, &counted).is_empty());
    }

    #[test]
    fn latency_regression_is_never_fatal() {
        let prev = snapshot("PR1", vec![result("hot", 100.0)]);
        let cur = snapshot("PR2", vec![result("hot", 10_000.0)]);
        assert!(fatal_failures(&prev, &cur).is_empty());
    }

    #[test]
    fn snapshot_series_round_trips_through_json() {
        let series = vec![
            snapshot("PR1", vec![result("a", 1.0)]),
            snapshot("PR2", vec![result("a", 2.0)]),
        ];
        let json = serde_json::to_string(&series).unwrap();
        let back: Vec<BenchSnapshot> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, series);
    }

    #[test]
    fn snapshots_recorded_before_the_allocs_field_still_parse() {
        // The committed series predates `allocs`; missing fields must
        // read back as None, not fail deserialisation.
        let json =
            r#"{"id":"a","mean_ns":1.0,"median_ns":1.0,"min_ns":0.9,"max_ns":1.2,"samples":20}"#;
        let r: BenchResult = serde_json::from_str(json).unwrap();
        assert_eq!(
            (r.allocs, r.p99_ns, r.throughput_per_sec, r.p25_ns, r.p75_ns),
            (None, None, None, None, None)
        );
    }
}
