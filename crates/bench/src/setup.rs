//! Standard experimental setups (§6.1–6.2).

use megh_flags::{EnvArgs, FlagSource as _};
use megh_sim::{DataCenterConfig, InitialPlacement};
use megh_trace::{GoogleConfig, PlanetLabConfig, WorkloadTrace};

/// Experiment scale.
///
/// `Full` is the paper's configuration (800 PMs / 1052 VMs / 7 days for
/// PlanetLab; 500 PMs / 2000 VMs for Google Cluster). `Reduced` keeps
/// the PM:VM ratio and the full 7-day horizon but shrinks the fleet ~5×
/// so the whole suite runs in minutes; all qualitative comparisons are
/// scale-free (costs per step, ratios between schedulers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~1/5 of the paper's fleet.
    Reduced,
    /// The paper's exact fleet sizes.
    Full,
}

impl Scale {
    /// PlanetLab fleet: (hosts, vms, days).
    pub fn planetlab(self) -> (usize, usize, usize) {
        match self {
            Scale::Reduced => (160, 210, 7),
            Scale::Full => (800, 1052, 7),
        }
    }

    /// Google Cluster fleet: (hosts, vms, days).
    pub fn google(self) -> (usize, usize, usize) {
        match self {
            Scale::Reduced => (100, 400, 7),
            Scale::Full => (500, 2000, 7),
        }
    }
}

/// Parses the common `--full` flag from process arguments.
pub fn scale_from_args() -> Scale {
    if EnvArgs::from_env().is_set("full") {
        Scale::Full
    } else {
        Scale::Reduced
    }
}

/// Parses a `--flag N` pair from process arguments, falling back to
/// `default` when absent, malformed, or zero. Shared by the table
/// binaries for `--seeds` / `--threads`; the actual lookup lives in
/// [`megh_flags::EnvArgs::lenient_usize`].
pub fn usize_flag_from_args(flag: &str, default: usize) -> usize {
    EnvArgs::from_env().lenient_usize(flag.trim_start_matches("--"), default)
}

/// The Table 2 / Figure 2 setup: the PlanetLab-like trace on the §6.2
/// fleet, demand-packed initial placement (CloudSim's power-aware
/// initial allocation).
pub fn planetlab_experiment(scale: Scale, seed: u64) -> (DataCenterConfig, WorkloadTrace) {
    let (m, n, days) = scale.planetlab();
    let mut config = DataCenterConfig::paper_planetlab(m, n);
    config.initial_placement = InitialPlacement::DemandPacked;
    let trace = PlanetLabConfig::new(n, seed).generate(days);
    (config, trace)
}

/// The Table 3 / Figure 3 setup: the Google-Cluster-like trace.
pub fn google_experiment(scale: Scale, seed: u64) -> (DataCenterConfig, WorkloadTrace) {
    let (m, n, days) = scale.google();
    let mut config = DataCenterConfig::paper_google(m, n);
    config.initial_placement = InitialPlacement::DemandPacked;
    let trace = GoogleConfig::new(n, seed).generate(days);
    (config, trace)
}

/// The Figures 4–5 setup: "two random sets of 150 workloads running on
/// 100 PMs for 3 days", allocated uniformly at random "such that there
/// is no initial bias for the learning". `google` selects which trace
/// family drives the subset.
pub fn madvm_subset_experiment(google: bool, seed: u64) -> (DataCenterConfig, WorkloadTrace) {
    let (m, n, days) = (100, 150, 3);
    let mut config = if google {
        DataCenterConfig::paper_google(m, n)
    } else {
        DataCenterConfig::paper_planetlab(m, n)
    };
    config.initial_placement = InitialPlacement::RandomUniform { seed };
    let trace = if google {
        GoogleConfig::new(n, seed).generate(days)
    } else {
        PlanetLabConfig::new(n, seed).generate(days)
    };
    (config, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_match_paper() {
        assert_eq!(Scale::Full.planetlab(), (800, 1052, 7));
        assert_eq!(Scale::Full.google(), (500, 2000, 7));
        let (m, n, d) = Scale::Reduced.planetlab();
        assert!(m >= 100 && n > m && d == 7);
    }

    #[test]
    fn planetlab_setup_is_consistent() {
        let (config, trace) = planetlab_experiment(Scale::Reduced, 3);
        assert_eq!(config.vms.len(), trace.n_vms());
        assert_eq!(trace.n_steps(), 7 * 288);
        assert_eq!(config.initial_placement, InitialPlacement::DemandPacked);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn google_setup_is_consistent() {
        let (config, trace) = google_experiment(Scale::Reduced, 3);
        assert_eq!(config.vms.len(), trace.n_vms());
        assert!(config.validate().is_ok());
    }

    #[test]
    fn madvm_subset_matches_section_6_3() {
        let (config, trace) = madvm_subset_experiment(false, 1);
        assert_eq!(config.pms.len(), 100);
        assert_eq!(config.vms.len(), 150);
        assert_eq!(trace.n_steps(), 3 * 288);
        assert!(matches!(
            config.initial_placement,
            InitialPlacement::RandomUniform { .. }
        ));
    }
}
