//! Result formatting and persistence.

use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use megh_sim::{SummaryReport, SweepReport};

/// Error writing experiment results.
#[derive(Debug)]
pub enum ResultsError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON serialisation failure.
    Json(serde_json::Error),
}

impl fmt::Display for ResultsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for ResultsError {}

impl From<std::io::Error> for ResultsError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<serde_json::Error> for ResultsError {
    fn from(e: serde_json::Error) -> Self {
        Self::Json(e)
    }
}

/// Creates (if needed) and returns the `results/` directory.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn ensure_results_dir() -> Result<PathBuf, ResultsError> {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Formats summary reports as the paper's table layout: one metric per
/// row, one scheduler per column.
pub fn format_table(title: &str, reports: &[SummaryReport]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let headers: Vec<String> = reports.iter().map(|r| r.scheduler.clone()).collect();
    let rows: Vec<(&str, Vec<String>)> = vec![
        (
            "Total cost (USD)",
            reports
                .iter()
                .map(|r| format!("{:.1}", r.total_cost_usd))
                .collect(),
        ),
        (
            "  energy (USD)",
            reports
                .iter()
                .map(|r| format!("{:.1}", r.energy_cost_usd))
                .collect(),
        ),
        (
            "  SLA (USD)",
            reports
                .iter()
                .map(|r| format!("{:.1}", r.sla_cost_usd))
                .collect(),
        ),
        (
            "#VM migrations",
            reports
                .iter()
                .map(|r| r.total_migrations.to_string())
                .collect(),
        ),
        (
            "#Active hosts (mean)",
            reports
                .iter()
                .map(|r| format!("{:.1}", r.mean_active_hosts))
                .collect(),
        ),
        (
            "Execution time (ms)",
            reports
                .iter()
                .map(|r| format!("{:.3}", r.mean_decision_ms))
                .collect(),
        ),
    ];
    let metric_width = rows.iter().map(|(m, _)| m.len()).max().unwrap_or(0).max(8);
    let col_widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|(_, cells)| cells[i].len())
                .max()
                .unwrap_or(0)
                .max(h.len())
        })
        .collect();
    out.push_str(&format!("{:width$}", "", width = metric_width));
    for (h, w) in headers.iter().zip(&col_widths) {
        out.push_str(&format!("  {h:>w$}"));
    }
    out.push('\n');
    for (metric, cells) in rows {
        out.push_str(&format!("{metric:metric_width$}"));
        for (cell, w) in cells.iter().zip(&col_widths) {
            out.push_str(&format!("  {cell:>w$}"));
        }
        out.push('\n');
    }
    out
}

/// Formats sweep reports as a "mean ± std over seeds" table: one metric
/// per row, one scheduler per column. Seed-invariant baselines show a
/// std of 0.0 by construction.
pub fn format_sweep_table(title: &str, reports: &[SweepReport]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let headers: Vec<String> = reports.iter().map(|r| r.scheduler.clone()).collect();
    let rows: Vec<(&str, Vec<String>)> = vec![
        (
            "Total cost (USD)",
            reports
                .iter()
                .map(|r| format!("{:.1} ± {:.1}", r.mean_total_cost_usd, r.std_total_cost_usd))
                .collect(),
        ),
        (
            "  min … max (USD)",
            reports
                .iter()
                .map(|r| format!("{:.1} … {:.1}", r.min_total_cost_usd, r.max_total_cost_usd))
                .collect(),
        ),
        (
            "#VM migrations (mean)",
            reports
                .iter()
                .map(|r| format!("{:.1}", r.mean_total_migrations))
                .collect(),
        ),
        (
            "#Active hosts (mean)",
            reports
                .iter()
                .map(|r| format!("{:.1}", r.mean_active_hosts))
                .collect(),
        ),
        (
            "Seeds",
            reports.iter().map(|r| r.seeds.to_string()).collect(),
        ),
    ];
    let metric_width = rows.iter().map(|(m, _)| m.len()).max().unwrap_or(0).max(8);
    let col_widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|(_, cells)| cells[i].len())
                .max()
                .unwrap_or(0)
                .max(h.len())
        })
        .collect();
    out.push_str(&format!("{:width$}", "", width = metric_width));
    for (h, w) in headers.iter().zip(&col_widths) {
        out.push_str(&format!("  {h:>w$}"));
    }
    out.push('\n');
    for (metric, cells) in rows {
        out.push_str(&format!("{metric:metric_width$}"));
        for (cell, w) in cells.iter().zip(&col_widths) {
            out.push_str(&format!("  {cell:>w$}"));
        }
        out.push('\n');
    }
    out
}

/// Writes a CSV file with a header row and numeric rows.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv(
    path: impl AsRef<Path>,
    headers: &[&str],
    rows: impl IntoIterator<Item = Vec<f64>>,
) -> Result<(), ResultsError> {
    let mut f = fs::File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(f, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Writes any serialisable value as pretty JSON.
///
/// # Errors
///
/// Returns I/O or serialisation errors.
pub fn write_json<T: serde::Serialize>(
    path: impl AsRef<Path>,
    value: &T,
) -> Result<(), ResultsError> {
    let json = serde_json::to_string_pretty(value)?;
    fs::write(path, json)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(name: &str, cost: f64) -> SummaryReport {
        SummaryReport {
            scheduler: name.to_string(),
            steps: 10,
            total_cost_usd: cost,
            energy_cost_usd: cost * 0.8,
            sla_cost_usd: cost * 0.2,
            total_migrations: 42,
            mean_active_hosts: 3.5,
            mean_decision_ms: 0.12,
            max_decision_ms: 0.3,
        }
    }

    #[test]
    fn table_contains_all_schedulers_and_metrics() {
        let t = format_table("Table X", &[report("THR-MMT", 100.0), report("Megh", 88.0)]);
        assert!(t.contains("Table X"));
        assert!(t.contains("THR-MMT"));
        assert!(t.contains("Megh"));
        assert!(t.contains("Total cost"));
        assert!(t.contains("#VM migrations"));
        assert!(t.contains("Execution time"));
        assert!(t.contains("100.0"));
        assert!(t.contains("88.0"));
    }

    #[test]
    fn sweep_table_shows_mean_and_spread() {
        let run = |seed: u64, cost: f64| megh_sim::SeedRun {
            seed,
            steps: 10,
            total_cost_usd: cost,
            energy_cost_usd: cost * 0.8,
            sla_cost_usd: cost * 0.2,
            total_migrations: 5,
            mean_active_hosts: 3.0,
        };
        let sweep = SweepReport {
            scheduler: "Megh".to_string(),
            seeds: 2,
            runs: vec![run(1, 90.0), run(2, 110.0)],
            mean_total_cost_usd: 100.0,
            std_total_cost_usd: 10.0,
            min_total_cost_usd: 90.0,
            max_total_cost_usd: 110.0,
            mean_total_migrations: 5.0,
            mean_active_hosts: 3.0,
        };
        let t = format_sweep_table("Table X (sweep)", &[sweep]);
        assert!(t.contains("Table X (sweep)"));
        assert!(t.contains("100.0 ± 10.0"), "{t}");
        assert!(t.contains("90.0 … 110.0"), "{t}");
        assert!(t.contains("Seeds"), "{t}");
    }

    #[test]
    fn csv_roundtrip_layout() {
        let dir = std::env::temp_dir().join(format!("megh-bench-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.csv");
        write_csv(&path, &["a", "b"], vec![vec![1.0, 2.0], vec![3.5, 4.5]]).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 3);
        assert!(content.starts_with("a,b\n1,2\n"));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_writer_produces_valid_json() {
        let dir = std::env::temp_dir().join(format!("megh-bench-json-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        write_json(&path, &report("X", 1.0)).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&content).unwrap();
        assert_eq!(parsed["scheduler"], "X");
        fs::remove_dir_all(&dir).ok();
    }
}
