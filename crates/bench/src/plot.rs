//! A dependency-free SVG line-chart renderer.
//!
//! The experiment binaries emit CSV series; this module turns them into
//! standalone SVG figures so the harness regenerates the paper's plots,
//! not just their data. Deliberately minimal: linear or log₁₀ y-axis,
//! auto-scaled ticks, a legend, one polyline per series.

use std::fmt::Write as _;
use std::path::Path;

use crate::ResultsError;

/// Colour cycle (colour-blind-safe Okabe–Ito subset).
const COLOURS: [&str; 6] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
];

const WIDTH: f64 = 720.0;
const HEIGHT: f64 = 440.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;

/// A line chart under construction.
///
/// # Examples
///
/// ```
/// use megh_bench::LineChart;
///
/// let mut chart = LineChart::new("demo", "step", "cost");
/// chart.add_series("Megh", vec![(0.0, 1.0), (1.0, 0.5)]);
/// let svg = chart.render_svg();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("Megh"));
/// ```
#[derive(Debug, Clone)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
    log_y: bool,
}

impl LineChart {
    /// Creates an empty chart.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            log_y: false,
        }
    }

    /// Switches the y-axis to log₁₀ (non-positive samples are dropped).
    pub fn log_y(&mut self) -> &mut Self {
        self.log_y = true;
        self
    }

    /// Adds a named series of `(x, y)` points.
    pub fn add_series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        self.series.push((name.into(), points));
        self
    }

    /// Renders the chart to an SVG string.
    pub fn render_svg(&self) -> String {
        let transform = |y: f64| if self.log_y { y.log10() } else { y };
        let points: Vec<(usize, Vec<(f64, f64)>)> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, (_, pts))| {
                let pts = pts
                    .iter()
                    .filter(|&&(_, y)| !self.log_y || y > 0.0)
                    .map(|&(x, y)| (x, transform(y)))
                    .filter(|(x, y)| x.is_finite() && y.is_finite())
                    .collect();
                (i, pts)
            })
            .collect();

        let all: Vec<(f64, f64)> = points.iter().flat_map(|(_, p)| p.iter().copied()).collect();
        let (x_min, x_max) = extent(all.iter().map(|p| p.0));
        let (y_min, y_max) = extent(all.iter().map(|p| p.1));
        let x_span = (x_max - x_min).max(1e-12);
        let y_span = (y_max - y_min).max(1e-12);
        let plot_w = WIDTH - MARGIN_L - MARGIN_R;
        let plot_h = HEIGHT - MARGIN_T - MARGIN_B;
        let sx = |x: f64| MARGIN_L + (x - x_min) / x_span * plot_w;
        let sy = |y: f64| MARGIN_T + plot_h - (y - y_min) / y_span * plot_h;

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="15">{}</text>"#,
            WIDTH / 2.0,
            escape(&self.title)
        );
        // Axes.
        let _ = write!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h,
            MARGIN_L + plot_w,
            MARGIN_T + plot_h
        );
        let _ = write!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{}" stroke="black"/>"#,
            MARGIN_T + plot_h
        );
        // Ticks: 5 per axis.
        for i in 0..=4 {
            let fx = x_min + x_span * i as f64 / 4.0;
            let fy = y_min + y_span * i as f64 / 4.0;
            let label_y = if self.log_y {
                format!("{:.3}", 10f64.powf(fy))
            } else {
                format!("{fy:.3}")
            };
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="middle">{:.1}</text>"#,
                sx(fx),
                MARGIN_T + plot_h + 18.0,
                fx
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="end">{}</text>"#,
                MARGIN_L - 6.0,
                sy(fy) + 4.0,
                label_y
            );
            let _ = write!(
                svg,
                r##"<line x1="{MARGIN_L}" y1="{0}" x2="{1}" y2="{0}" stroke="#dddddd"/>"##,
                sy(fy),
                MARGIN_L + plot_w
            );
        }
        // Axis labels.
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            MARGIN_L + plot_w / 2.0,
            HEIGHT - 12.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_T + plot_h / 2.0,
            MARGIN_T + plot_h / 2.0,
            escape(&self.y_label)
        );
        // Series.
        for (i, pts) in &points {
            if pts.is_empty() {
                continue;
            }
            let colour = COLOURS[i % COLOURS.len()];
            let path: Vec<String> = pts
                .iter()
                .map(|&(x, y)| format!("{:.2},{:.2}", sx(x), sy(y)))
                .collect();
            let _ = write!(
                svg,
                r#"<polyline fill="none" stroke="{colour}" stroke-width="1.5" points="{}"/>"#,
                path.join(" ")
            );
        }
        // Legend.
        for (i, (name, _)) in self.series.iter().enumerate() {
            let colour = COLOURS[i % COLOURS.len()];
            let y = MARGIN_T + 8.0 + i as f64 * 16.0;
            let _ = write!(
                svg,
                r#"<line x1="{0}" y1="{y}" x2="{1}" y2="{y}" stroke="{colour}" stroke-width="2"/>"#,
                MARGIN_L + plot_w - 130.0,
                MARGIN_L + plot_w - 110.0
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{}">{}</text>"#,
                MARGIN_L + plot_w - 104.0,
                y + 4.0,
                escape(name)
            );
        }
        svg.push_str("</svg>");
        svg
    }

    /// Renders and writes the chart to a file.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ResultsError> {
        std::fs::write(path, self.render_svg())?;
        Ok(())
    }
}

fn extent(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::MAX;
    let mut max = f64::MIN;
    let mut any = false;
    for v in values {
        any = true;
        min = min.min(v);
        max = max.max(v);
    }
    if any {
        (min, max)
    } else {
        (0.0, 1.0)
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_svg() {
        let mut chart = LineChart::new("t", "x", "y");
        chart.add_series("a", vec![(0.0, 1.0), (1.0, 2.0)]);
        chart.add_series("b", vec![(0.0, 2.0), (1.0, 1.0)]);
        let svg = chart.render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn empty_chart_still_renders() {
        let chart = LineChart::new("empty", "x", "y");
        let svg = chart.render_svg();
        assert!(svg.contains("empty"));
        assert_eq!(svg.matches("<polyline").count(), 0);
    }

    #[test]
    fn log_axis_drops_nonpositive_points() {
        let mut chart = LineChart::new("log", "x", "y");
        chart.log_y();
        chart.add_series("a", vec![(0.0, 0.0), (1.0, 10.0), (2.0, 100.0)]);
        let svg = chart.render_svg();
        // The polyline must contain exactly 2 coordinate pairs.
        let points_attr = svg
            .split("points=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap();
        assert_eq!(points_attr.split(' ').count(), 2);
    }

    #[test]
    fn titles_are_escaped() {
        let chart = LineChart::new("a < b & c", "x", "y");
        let svg = chart.render_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn coordinates_are_inside_canvas() {
        let mut chart = LineChart::new("bounds", "x", "y");
        chart.add_series("a", vec![(-50.0, -3.0), (1000.0, 900.0)]);
        let svg = chart.render_svg();
        let points_attr = svg
            .split("points=\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .unwrap();
        for pair in points_attr.split(' ') {
            let (x, y) = pair.split_once(',').unwrap();
            let x: f64 = x.parse().unwrap();
            let y: f64 = y.parse().unwrap();
            assert!((0.0..=WIDTH).contains(&x));
            assert!((0.0..=HEIGHT).contains(&y));
        }
    }
}
