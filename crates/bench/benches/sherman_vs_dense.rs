//! The §5.2 complexity claim, measured: one Megh learning step
//! implemented three ways.
//!
//! * `sparse_sm` — what Megh does: Sherman–Morrison on the sparse DOK
//!   delta with incremental θ (`O(#migrations)` per step);
//! * `dense_sm` — Sherman–Morrison on a dense `d × d` matrix (`O(d²)`);
//! * `gauss_jordan` — re-inverting `T` from scratch each step (`O(d³)`),
//!   the naive LSPI implementation the paper contrasts against.
//!
//! The spread across `d` is the whole argument for why Megh can decide
//! in milliseconds on data centers where `d = N × M` reaches 10⁵–10⁶.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use megh_core::SparseLspi;
use megh_linalg::DenseMatrix;

/// One dense Sherman–Morrison update: B ← B − (B u vᵀ B)/(1 + vᵀ B u)
/// with u = e_a, v = e_a − γ e_b.
fn dense_sherman_step(b: &mut DenseMatrix, a: usize, a2: usize, gamma: f64) {
    let n = b.rows();
    let bu: Vec<f64> = (0..n).map(|i| b.get(i, a)).collect();
    let vb: Vec<f64> = (0..n).map(|j| b.get(a, j) - gamma * b.get(a2, j)).collect();
    let denom = 1.0 + (bu[a] - gamma * bu[a2]);
    for (i, &bui) in bu.iter().enumerate() {
        for (j, &vbj) in vb.iter().enumerate() {
            let val = b.get(i, j) - bui * vbj / denom;
            b.set(i, j, val);
        }
    }
}

/// One Gauss–Jordan step: apply the rank-1 update to T, invert fully.
fn gauss_jordan_step(t: &mut DenseMatrix, a: usize, a2: usize, gamma: f64) -> DenseMatrix {
    t.set(a, a, t.get(a, a) + 1.0);
    t.set(a, a2, t.get(a, a2) - gamma);
    t.inverse().expect("T stays invertible")
}

fn bench_update_strategies(c: &mut Criterion) {
    let gamma = 0.5;
    let mut group = c.benchmark_group("lspi_step");
    group.sample_size(10);

    // Sparse Sherman–Morrison at Megh's real operating point: large d
    // (100 × 150 VMs → 15 000; 800 × 1052 → 841 600), a trail of prior
    // steps over mostly-distinct actions (a week touches ~2 000 of the
    // d actions). Dense representations cannot even be *allocated* at
    // the upper sizes (841 600² doubles ≈ 5.7 TB) — which is the §5.2
    // argument in one line.
    for &d in &[15_000usize, 131_072, 841_600] {
        group.bench_with_input(BenchmarkId::new("sparse_sm", d), &d, |bench, &d| {
            let mut lspi = SparseLspi::new(d, d as f64, gamma);
            for t in 0..2_000 {
                lspi.update((t * 419) % d, (t * 7 + 1) % d, 0.5);
            }
            let mut t = 2_000usize;
            bench.iter(|| {
                t += 1;
                std::hint::black_box(lspi.update((t * 419) % d, (t * 7 + 1) % d, 0.5));
            });
        });
    }

    // Dense baselines only fit at toy sizes.
    for &d in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("dense_sm", d), &d, |bench, &d| {
            let mut b = DenseMatrix::identity(d);
            for i in 0..d {
                b.set(i, i, 1.0 / d as f64);
            }
            let mut t = 0usize;
            bench.iter(|| {
                t += 1;
                dense_sherman_step(&mut b, t % d, (t * 7 + 1) % d, gamma);
                std::hint::black_box(b.get(0, 0));
            });
        });
        // Full re-inversion is O(d³): keep it to sizes that finish.
        if d <= 256 {
            group.bench_with_input(BenchmarkId::new("gauss_jordan", d), &d, |bench, &d| {
                let mut t_matrix = DenseMatrix::identity(d);
                for i in 0..d {
                    t_matrix.set(i, i, d as f64);
                }
                let mut step = 0usize;
                bench.iter(|| {
                    step += 1;
                    std::hint::black_box(gauss_jordan_step(
                        &mut t_matrix,
                        step % d,
                        (step * 7 + 1) % d,
                        gamma,
                    ));
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_update_strategies);
criterion_main!(benches);
