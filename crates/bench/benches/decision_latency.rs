//! Criterion microbenchmark: per-step decision latency of Megh, THR-MMT
//! and MadVM at several data-center sizes.
//!
//! This is the microbenchmark behind the "Execution time (ms)" column of
//! Tables 2–3 and the Figure 6 scaling curves: it measures exactly one
//! `Scheduler::decide` call on a warmed-up scheduler, isolating decision
//! latency from simulation bookkeeping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use megh_baselines::{MadVmConfig, MadVmScheduler, MmtFlavor, MmtScheduler};
use megh_core::{MeghAgent, MeghConfig};
use megh_sim::{DataCenterConfig, DataCenterView, InitialPlacement, Scheduler, Simulation};
use megh_trace::PlanetLabConfig;

/// Captures a mid-run view after `warmup` steps of the given scheduler,
/// returning the warmed scheduler and the captured view.
fn warmed<S: Scheduler>(
    m: usize,
    n: usize,
    warmup: usize,
    mut scheduler: S,
) -> (S, DataCenterView) {
    struct Tail<'a, S> {
        inner: &'a mut S,
        last_view: Option<DataCenterView>,
    }
    impl<S: Scheduler> Scheduler for Tail<'_, S> {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn decide(&mut self, view: &DataCenterView) -> Vec<megh_sim::MigrationRequest> {
            self.last_view = Some(view.clone());
            self.inner.decide(view)
        }
        fn observe(&mut self, feedback: &megh_sim::StepFeedback) {
            self.inner.observe(feedback)
        }
    }

    let mut config = DataCenterConfig::paper_planetlab(m, n);
    config.initial_placement = InitialPlacement::DemandPacked;
    let trace = PlanetLabConfig::new(n, 7).generate_steps(warmup);
    let sim = Simulation::new(config, trace).expect("valid setup");
    let mut tail = Tail {
        inner: &mut scheduler,
        last_view: None,
    };
    sim.run(&mut tail);
    let view = tail.last_view.expect("warmup ran at least one step");
    (scheduler, view)
}

fn bench_decision_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("decide");
    group.sample_size(20);

    for &(m, n) in &[(50usize, 66usize), (100, 132), (200, 264)] {
        group.bench_with_input(
            BenchmarkId::new("Megh", format!("{m}x{n}")),
            &(m, n),
            |b, _| {
                let (mut megh, view) =
                    warmed(m, n, 30, MeghAgent::new(MeghConfig::paper_defaults(n, m)));
                b.iter(|| std::hint::black_box(megh.decide(&view)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("THR-MMT", format!("{m}x{n}")),
            &(m, n),
            |b, _| {
                let (mut thr, view) = warmed(m, n, 30, MmtScheduler::new(MmtFlavor::Thr));
                b.iter(|| std::hint::black_box(thr.decide(&view)));
            },
        );
    }

    // MadVM only at the small size — it is the slow one by design.
    group.bench_function(BenchmarkId::new("MadVM", "50x66"), |b| {
        let (mut madvm, view) = warmed(50, 66, 30, MadVmScheduler::new(MadVmConfig::default()));
        b.iter(|| std::hint::black_box(madvm.decide(&view)));
    });

    // Evaluation-phase decide with the critic running: `observe` feeds a
    // cost, so the next `decide` computes the preview products B·u and
    // Bᵀ·v. The two probes differ only in the backend serving those
    // products — the frozen CSR snapshot vs the live DOK operator — so
    // their ratio is the CSR freeze win in isolation.
    for &(m, n) in &[(100usize, 132usize), (200, 264)] {
        for (label, frozen) in [("dok_decide", false), ("csr_decide", true)] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{m}x{n}")),
                &(m, n),
                |b, _| {
                    let (mut megh, view) =
                        warmed(m, n, 30, MeghAgent::new(MeghConfig::paper_defaults(n, m)));
                    if frozen {
                        megh.freeze();
                    } else {
                        megh.suspend_learning();
                    }
                    let feedback = megh_sim::StepFeedback {
                        step: 0,
                        energy_cost_usd: 0.05,
                        sla_cost_usd: 0.01,
                        total_cost_usd: 0.06,
                        applied: Vec::new(),
                    };
                    b.iter(|| {
                        megh.observe(&feedback);
                        std::hint::black_box(megh.decide(&view))
                    });
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_decision_latency);
criterion_main!(benches);
