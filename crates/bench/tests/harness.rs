//! Integration tests of the experiment harness itself: the plumbing
//! every table and figure relies on (CSV/JSON writers, the chart
//! renderer, the probe, the series bundle) must hold together on a
//! real mini-experiment.

use megh_bench::{
    format_table, run_all_mmt, run_madvm, run_megh, write_csv, write_json, LineChart, MeghProbe,
    SeriesBundle,
};
use megh_core::{MeghAgent, MeghConfig};
use megh_sim::{DataCenterConfig, InitialPlacement, Simulation};
use megh_trace::PlanetLabConfig;

fn mini_setup() -> (DataCenterConfig, megh_trace::WorkloadTrace) {
    let mut config = DataCenterConfig::paper_planetlab(5, 8);
    config.initial_placement = InitialPlacement::DemandPacked;
    let trace = PlanetLabConfig::new(8, 9).generate_steps(30);
    (config, trace)
}

#[test]
fn end_to_end_mini_experiment_produces_all_artifacts() {
    let (config, trace) = mini_setup();
    let dir = std::env::temp_dir().join(format!("megh-harness-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // Run the table-2 shape: all MMT flavors plus Megh.
    let mut outcomes = run_all_mmt(&config, &trace).unwrap();
    outcomes.push(run_megh(&config, &trace, 9).unwrap());
    let reports: Vec<_> = outcomes.iter().map(|o| o.report()).collect();

    // The printed table carries every scheduler and metric row.
    let table = format_table("mini", &reports);
    for name in ["THR-MMT", "IQR-MMT", "MAD-MMT", "LR-MMT", "LRR-MMT", "Megh"] {
        assert!(table.contains(name), "missing {name}");
    }

    // Series CSV for the fig-2 shape.
    let refs: Vec<&megh_sim::SimulationOutcome> = outcomes.iter().collect();
    let bundle = SeriesBundle::new(&refs);
    let headers = bundle.headers();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let csv_path = dir.join("series.csv");
    write_csv(&csv_path, &header_refs, bundle.rows(|r| r.total_cost_usd)).unwrap();
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    assert_eq!(csv.lines().count(), 31, "header + 30 steps");

    // JSON manifest.
    let json_path = dir.join("reports.json");
    write_json(&json_path, &reports).unwrap();
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
    assert_eq!(parsed.as_array().unwrap().len(), 6);

    // SVG figure from the same series.
    let mut chart = LineChart::new("mini", "step", "USD");
    for (name, records) in bundle.names.iter().zip(&bundle.records) {
        chart.add_series(
            name.clone(),
            records
                .iter()
                .map(|r| (r.step as f64, r.total_cost_usd))
                .collect(),
        );
    }
    let svg_path = dir.join("series.svg");
    chart.save(&svg_path).unwrap();
    let svg = std::fs::read_to_string(&svg_path).unwrap();
    assert!(svg.starts_with("<svg"));
    assert_eq!(svg.matches("<polyline").count(), 6);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn probe_and_direct_agent_agree() {
    // Wrapping the agent in the Fig-7 probe must not change behaviour.
    let (config, trace) = mini_setup();
    let sim = Simulation::new(config, trace).unwrap();
    let direct = sim.run(MeghAgent::new(MeghConfig::paper_defaults(8, 5)));
    let mut probe = MeghProbe::new(MeghAgent::new(MeghConfig::paper_defaults(8, 5)));
    let probed = sim.run(&mut probe);
    assert_eq!(direct.final_placement(), probed.final_placement());
    assert_eq!(
        direct.report().total_migrations,
        probed.report().total_migrations
    );
    assert_eq!(probe.qtable_nnz_series().len(), 30);
    assert_eq!(
        *probe.qtable_nnz_series().last().unwrap(),
        probe.agent().qtable_nnz()
    );
}

#[test]
fn madvm_runner_matches_direct_use() {
    let (config, trace) = mini_setup();
    let via_runner = run_madvm(&config, &trace).unwrap();
    let direct = Simulation::new(config, trace)
        .unwrap()
        .run(megh_baselines::MadVmScheduler::new(
            megh_baselines::MadVmConfig::default(),
        ));
    assert_eq!(via_runner.final_placement(), direct.final_placement());
}
