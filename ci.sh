#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
# Run from the repo root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p lint (workspace invariant checker)"
cargo run -q -p lint

echo "==> lint-diff (fatal on new violations or property regressions)"
cargo run -q -p lint -- --diff

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo test --workspace --features check-invariants"
cargo test --workspace --features check-invariants -q

echo "==> sweep determinism under check-invariants"
cargo test -q -p megh-cli --features megh-core/check-invariants sweep_determinism

echo "==> bench-diff (non-fatal latency regression warnings)"
cargo run -q -p megh-bench --bin bench-diff || true

echo "CI OK"
