#!/usr/bin/env bash
# Local CI gate: formatting, lints, build, and the full test suite.
# Run from the repo root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo run -p lint (cold scan + SARIF, empty lint-cache, budget <10s)"
rm -rf target/lint-cache
LINT_START=$(date +%s)
cargo run -q -p lint -- --sarif target/lint.sarif
LINT_SECS=$(( $(date +%s) - LINT_START ))
if [ "$LINT_SECS" -ge 10 ]; then
  echo "lint: cold workspace scan took ${LINT_SECS}s (budget: <10s)" >&2
  exit 1
fi
if ! [ -s target/lint.sarif ]; then
  echo "lint: --sarif produced no log" >&2
  exit 1
fi

echo "==> cargo run -p lint (warm scan via target/lint-cache, budget <5s)"
LINT_START=$(date +%s)
cargo run -q -p lint
LINT_SECS=$(( $(date +%s) - LINT_START ))
if [ "$LINT_SECS" -ge 5 ]; then
  echo "lint: warm workspace scan took ${LINT_SECS}s (budget: <5s)" >&2
  exit 1
fi

echo "==> lint-diff (fatal on new violations or property regressions)"
cargo run -q -p lint -- --diff

echo "==> lint --fix --check (fatal if --fix would rewrite anything)"
cargo run -q -p lint -- --fix --check

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo test --workspace --features check-invariants"
cargo test --workspace --features check-invariants -q

echo "==> sweep determinism under check-invariants"
cargo test -q -p megh-cli --features megh-core/check-invariants sweep_determinism

echo "==> streaming determinism (chunk-size / sim-thread invariance)"
cargo test -q -p megh-sim streaming_
cargo test -q -p megh-cli stream_

echo "==> streaming peak-RSS budget (500 VMs x 30 days, noop, budget <32768 kB)"
RSS_LINE=$(target/release/megh simulate --workload planetlab --hosts 250 --vms 500 \
  --days 30 --scheduler noop --stream --mem-stats | tail -n 1)
echo "$RSS_LINE"
RSS_KB=$(echo "$RSS_LINE" | awk '/^peak RSS/ {print $3}')
if ! [ "${RSS_KB:-99999999}" -lt 32768 ] 2>/dev/null; then
  echo "streaming RSS budget exceeded: ${RSS_KB:-unparsable} kB (budget: <32768 kB)" >&2
  exit 1
fi

echo "==> file-streaming peak-RSS budget (500 VMs x 30 days CSV, noop, budget <32768 kB)"
TRACE_DIR="$(mktemp -d)"
target/release/megh trace-gen --workload planetlab --vms 500 --days 30 --seed 11 \
  --out "$TRACE_DIR/trace.csv" >/dev/null
RSS_LINE=$(target/release/megh simulate --file "$TRACE_DIR/trace.csv" --hosts 250 \
  --scheduler noop --stream --mem-stats | tail -n 1)
rm -rf "$TRACE_DIR"
echo "$RSS_LINE"
RSS_KB=$(echo "$RSS_LINE" | awk '/^peak RSS/ {print $3}')
if ! [ "${RSS_KB:-99999999}" -lt 32768 ] 2>/dev/null; then
  echo "file-streaming RSS budget exceeded: ${RSS_KB:-unparsable} kB (budget: <32768 kB)" >&2
  exit 1
fi

echo "==> bench-diff (latency warnings advisory; shape/alloc checks fatal)"
cargo run -q -p megh-bench --bin bench-diff
cargo run -q -p megh-bench --bin bench-diff BENCH_serve_throughput.json
cargo run -q -p megh-bench --bin bench-diff BENCH_sim_step.json

echo "==> serve smoke: checkpoint, kill -9, restart, byte-identical decides"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
MEGH=target/release/megh
SOCK="unix:$SMOKE_DIR/megh.sock"
"$MEGH" serve --listen "$SOCK" --checkpoint "$SMOKE_DIR/cp.json" \
  --vms 8 --hosts 4 --checkpoint-every 0 &
SERVE_PID=$!
for i in $(seq 0 24); do
  "$MEGH" client --connect "$SOCK" --op observe --action "$i" --cost 0.1 >/dev/null
done
"$MEGH" client --connect "$SOCK" --op sync >/dev/null
"$MEGH" client --connect "$SOCK" --op checkpoint >/dev/null
for seed in $(seq 0 9); do
  "$MEGH" client --connect "$SOCK" --op decide --seed "$seed"
done > "$SMOKE_DIR/before.txt"
# Learning after the checkpoint must not survive the crash.
"$MEGH" client --connect "$SOCK" --op observe --action 3 --cost 0.9 >/dev/null
"$MEGH" client --connect "$SOCK" --op sync >/dev/null
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
"$MEGH" serve --listen "$SOCK" --checkpoint "$SMOKE_DIR/cp.json" \
  --vms 8 --hosts 4 --checkpoint-every 0 &
SERVE_PID=$!
for seed in $(seq 0 9); do
  "$MEGH" client --connect "$SOCK" --op decide --seed "$seed"
done > "$SMOKE_DIR/after.txt"
"$MEGH" client --connect "$SOCK" --op shutdown >/dev/null
wait "$SERVE_PID"
diff -u "$SMOKE_DIR/before.txt" "$SMOKE_DIR/after.txt"
echo "serve smoke: decisions identical across SIGKILL + restart"

echo "CI OK"
