//! Offline shim for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate supplies
//! the subset of proptest the Megh workspace uses: range and tuple
//! strategies, `prop::collection::vec`, `prop_map`, the `proptest!`
//! macro with `#![proptest_config(...)]`, and `prop_assert!`/
//! `prop_assert_eq!`. Cases are generated from a deterministic RNG
//! seeded by the test's module path and case index, so failures
//! reproduce exactly across runs. Shrinking is not implemented — a
//! failure reports its case index instead of a minimised input.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Prelude matching the imports the workspace uses
/// (`use proptest::prelude::*;`).
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    // Lets `prop::collection::vec(...)` resolve without importing the
    // crate under a second name.
    pub use crate as prop;
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; one test fn per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(__err) = __outcome {
                    ::core::panic!(
                        "proptest case {} of {} failed: {}",
                        __case,
                        stringify!($name),
                        __err
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (not panicking) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}
