//! Runner configuration, deterministic per-case RNG, and case errors.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Runner configuration (only the field the workspace sets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest's default.
        Self { cases: 256 }
    }
}

/// Deterministic RNG: seeded from the test's identity and case index so
/// every run generates the same inputs (failures reproduce exactly).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for one case of one test.
    pub fn for_case(test_id: &str, case: u32) -> Self {
        // FNV-1a over the test id, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_id.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(
            hash ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
