//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// is just a deterministic function of the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
