//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// A length specification: an exact size or a half-open range, matching
/// the two forms the workspace passes to [`vec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        Self {
            lo: range.start,
            hi: range.end,
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
