//! Offline shim for `serde_derive`.
//!
//! The build environment cannot reach crates.io, so this crate derives
//! `Serialize`/`Deserialize` impls without `syn` or `quote`: a small
//! hand-rolled token-tree walker extracts the type's shape (struct or
//! enum, field names or tuple arity), and the impls are emitted as
//! strings targeting the shim `serde` value-tree data model. Field
//! *types* are never parsed — struct-literal construction with
//! `serde::value::from_value` lets inference supply them.
//!
//! Supported shapes (everything the Megh workspace derives): non-generic
//! structs with named fields, tuple structs, unit structs, and enums
//! whose variants are unit, tuple, or struct-like. External tagging
//! matches real serde: unit variants serialize as `"Name"`, data
//! variants as `{"Name": ...}`. Generic types and `#[serde(...)]`
//! attributes are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a struct body or an enum variant.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

/// The parsed derive input.
enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let tok = self.toks.get(self.pos).cloned();
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn is_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn is_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == word)
    }

    /// Skips any `#[...]` attributes (doc comments included — the
    /// compiler hands them to us in attribute form) and a visibility
    /// qualifier (`pub`, `pub(crate)`, `pub(in ...)`).
    fn skip_attrs_and_vis(&mut self) -> Result<(), String> {
        loop {
            if self.is_punct('#') {
                self.bump();
                match self.bump() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if g.to_string()
                            .trim_start_matches('[')
                            .trim_start()
                            .starts_with("serde")
                        {
                            return Err(
                                "the serde derive shim does not support #[serde(...)] attributes"
                                    .into(),
                            );
                        }
                    }
                    _ => return Err("malformed attribute in derive input".into()),
                }
                continue;
            }
            if self.is_ident("pub") {
                self.bump();
                if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    self.bump();
                }
                continue;
            }
            return Ok(());
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }
}

/// Splits a delimited group's tokens into segments at top-level commas
/// (angle-bracket depth 0; parenthesised types are opaque `Group`s, so
/// their commas never leak). Empty segments (trailing comma) drop out.
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut segments = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tok in tokens {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        segments.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(tok);
    }
    if !current.is_empty() {
        segments.push(current);
    }
    segments
}

/// Extracts field names from the tokens of a braced field list.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    split_top_level(group.into_iter().collect())
        .into_iter()
        .map(|segment| {
            let mut cur = Cursor {
                toks: segment,
                pos: 0,
            };
            cur.skip_attrs_and_vis()?;
            let name = cur.expect_ident()?;
            if !cur.is_punct(':') {
                return Err(format!("expected `:` after field `{name}`"));
            }
            Ok(name)
        })
        .collect()
}

/// Counts the fields of a parenthesised (tuple) field list.
fn parse_tuple_arity(group: TokenStream) -> usize {
    split_top_level(group.into_iter().collect()).len()
}

fn parse_variants(group: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    split_top_level(group.into_iter().collect())
        .into_iter()
        .map(|segment| {
            let mut cur = Cursor {
                toks: segment,
                pos: 0,
            };
            cur.skip_attrs_and_vis()?;
            let name = cur.expect_ident()?;
            let fields = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_arity(g.stream()))
                }
                None => Fields::Unit,
                Some(other) => {
                    return Err(format!("unsupported token after variant `{name}`: {other}"))
                }
            };
            Ok((name, fields))
        })
        .collect()
}

fn parse_input(stream: TokenStream) -> Result<Input, String> {
    let mut cur = Cursor::new(stream);
    cur.skip_attrs_and_vis()?;
    let keyword = cur.expect_ident()?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    let name = cur.expect_ident()?;
    if cur.is_punct('<') {
        return Err(format!(
            "the serde derive shim does not support generic type `{name}`"
        ));
    }
    if is_enum {
        match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Input::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            _ => Err(format!("expected `{{ ... }}` after `enum {name}`")),
        }
    } else {
        let fields = match cur.bump() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Fields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Fields::Tuple(parse_tuple_arity(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
            _ => return Err(format!("unsupported struct body for `{name}`")),
        };
        Ok(Input::Struct { name, fields })
    }
}

const SER_ERR: &str = "<S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<D::Error as ::serde::de::Error>::custom";

/// `to_value(expr)` mapped into the serializer's error type.
fn ser_field(expr: &str) -> String {
    format!("::serde::value::to_value({expr}).map_err({SER_ERR})?")
}

/// `from_value(expr)` mapped into the deserializer's error type.
fn de_field(expr: &str) -> String {
    format!("::serde::value::from_value({expr}).map_err({DE_ERR})?")
}

/// Expression serializing a struct/variant body into a `Value`, given
/// per-field accessor expressions.
fn ser_body(fields: &Fields, accessor: &dyn Fn(usize, &str) -> String) -> String {
    match fields {
        Fields::Unit => "::serde::value::Value::Null".to_string(),
        Fields::Tuple(1) => ser_field(&accessor(0, "")),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n).map(|i| ser_field(&accessor(i, ""))).collect();
            format!("::serde::value::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let pairs: Vec<String> = names
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    format!(
                        "(\"{name}\".to_string(), {})",
                        ser_field(&accessor(i, name))
                    )
                })
                .collect();
            format!("::serde::value::Value::Object(vec![{}])", pairs.join(", "))
        }
    }
}

/// Statements + expression deserializing a struct/variant body from the
/// `Value` named by `source`, producing `constructor ( .. )`.
fn de_body(constructor: &str, fields: &Fields, source: &str, context: &str) -> String {
    match fields {
        Fields::Unit => format!(
            "match {source} {{ \
               ::serde::value::Value::Null => Ok({constructor}), \
               _ => Err({DE_ERR}(\"expected null for {context}\")), \
             }}"
        ),
        Fields::Tuple(1) => format!("Ok({constructor}({}))", de_field(source)),
        Fields::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|_| de_field("__iter.next().unwrap()"))
                .collect();
            format!(
                "{{ let __items = match {source} {{ \
                     ::serde::value::Value::Array(items) if items.len() == {n} => items, \
                     _ => return Err({DE_ERR}(\"expected array of length {n} for {context}\")), \
                   }}; \
                   let mut __iter = __items.into_iter(); \
                   Ok({constructor}({})) }}",
                elems.join(", ")
            )
        }
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|name| {
                    format!(
                        "{name}: {}",
                        de_field(&format!(
                            "::serde::value::take_field(&mut __obj, \"{name}\")"
                        ))
                    )
                })
                .collect();
            format!(
                "{{ let mut __obj = match {source} {{ \
                     ::serde::value::Value::Object(pairs) => pairs, \
                     _ => return Err({DE_ERR}(\"expected object for {context}\")), \
                   }}; \
                   Ok({constructor} {{ {} }}) }}",
                inits.join(", ")
            )
        }
    }
}

fn generate_serialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, fields } => {
            let body = format!(
                "serializer.serialize_value({})",
                ser_body(fields, &|i, field| {
                    if field.is_empty() {
                        format!("&self.{i}")
                    } else {
                        format!("&self.{field}")
                    }
                })
            );
            (name, body)
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::value::Value::String(\"{vname}\".to_string()),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = ser_body(fields, &|i, _| format!("__f{i}"));
                        format!(
                            "{name}::{vname}({}) => ::serde::value::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(field_names) => {
                        let binds = field_names.join(", ");
                        let inner = ser_body(fields, &|_, field| field.to_string());
                        format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::value::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),"
                        )
                    }
                })
                .collect();
            let body = format!(
                "let __value = match self {{ {} }}; serializer.serialize_value(__value)",
                arms.join(" ")
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] \
         impl ::serde::Serialize for {name} {{ \
           #[allow(unused_variables, clippy::redundant_clone)] \
           fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
             -> ::core::result::Result<S::Ok, S::Error> {{ {body} }} \
         }}"
    )
}

fn generate_deserialize(input: &Input) -> String {
    let (name, body) = match input {
        Input::Struct { name, fields } => {
            let body = de_body(name, fields, "__value", &format!("struct {name}"));
            (name, body)
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| !matches!(f, Fields::Unit))
                .map(|(vname, fields)| {
                    let inner = de_body(
                        &format!("{name}::{vname}"),
                        fields,
                        "__inner",
                        &format!("variant {name}::{vname}"),
                    );
                    format!("\"{vname}\" => {inner},")
                })
                .collect();
            let body = format!(
                "match __value {{ \
                   ::serde::value::Value::String(__s) => match __s.as_str() {{ \
                     {} \
                     __other => Err({DE_ERR}(format!(\"unknown unit variant `{{}}` for enum {name}\", __other))), \
                   }}, \
                   ::serde::value::Value::Object(mut __pairs) if __pairs.len() == 1 => {{ \
                     let (__tag, __inner) = __pairs.pop().unwrap(); \
                     match __tag.as_str() {{ \
                       {} \
                       __other => Err({DE_ERR}(format!(\"unknown variant `{{}}` for enum {name}\", __other))), \
                     }} \
                   }}, \
                   _ => Err({DE_ERR}(\"expected externally tagged enum {name}\")), \
                 }}",
                unit_arms.join(" "),
                data_arms.join(" ")
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived] \
         impl<'de> ::serde::Deserialize<'de> for {name} {{ \
           #[allow(unused_variables, unused_mut)] \
           fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
             -> ::core::result::Result<Self, D::Error> {{ \
             let __value = ::serde::Deserializer::into_value(deserializer)?; \
             {body} \
           }} \
         }}"
    )
}

fn run(input: TokenStream, generate: fn(&Input) -> String) -> TokenStream {
    let code = match parse_input(input) {
        Ok(parsed) => generate(&parsed),
        Err(msg) => format!("::core::compile_error!({msg:?});"),
    };
    code.parse().expect("derive shim generated invalid Rust")
}

/// Derives `serde::Serialize` via the shim's value-tree data model.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    run(input, generate_serialize)
}

/// Derives `serde::Deserialize` via the shim's value-tree data model.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    run(input, generate_deserialize)
}
