//! Offline shim for the `rand_distr` crate (0.4 API subset).
//!
//! Implements the [`Distribution`] trait plus the [`Normal`] and
//! [`LogNormal`] distributions used by the Megh trace generators.
//! Normal sampling uses Box–Muller, which needs no rejection loop and
//! behaves correctly in the degenerate `std_dev == 0` case.

use rand::Rng;
use std::fmt;

/// Types that produce values of `T` from a source of randomness.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned when distribution parameters are invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean was not finite.
    MeanTooSmall,
    /// The standard deviation was negative or not finite.
    BadVariance,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::MeanTooSmall => write!(f, "mean is not finite"),
            NormalError::BadVariance => write!(f, "standard deviation is negative or not finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation. `std_dev == 0` yields a point mass at `mean`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Self { mean, std_dev })
    }
}

/// Draws a standard normal variate via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1 = 1.0 - rng.gen_range(0.0..1.0f64);
    let u2 = rng.gen_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: exp of a `Normal(mu, sigma)` variate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution from the mean and standard
    /// deviation of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Normal::new(2.0, 3.0).unwrap();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn zero_std_dev_is_point_mass() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = Normal::new(5.0, 0.0).unwrap();
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
        assert!(LogNormal::new(0.0, -0.5).is_err());
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = LogNormal::new(0.0, 0.3).unwrap();
        for _ in 0..10_000 {
            assert!(dist.sample(&mut rng) > 0.0);
        }
    }
}
