//! Offline shim for `criterion`.
//!
//! The build environment cannot reach crates.io, so this crate supplies
//! the subset of criterion's API the Megh benches use: benchmark
//! groups, `bench_with_input`/`bench_function`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Each sample times a calibrated batch of iterations; a group's
//! statistics (mean/median/min/max ns per iteration) are printed to
//! stdout and written as JSON to `$BENCH_JSON_DIR/<group>.json`
//! (default `target/criterion-shim/`), which is how the repo's
//! committed `BENCH_*.json` files are produced.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Wall-clock budget for calibrating one benchmark's batch size.
const CALIBRATION: Duration = Duration::from_millis(30);
/// Wall-clock target for one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(2);

/// Identifies a benchmark within a group: `function/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter label.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly: calibrates a batch size, then records
    /// `sample_count` timed batches as ns-per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration doubles the batch until it fills the budget; this
        // also serves as warmup.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= CALIBRATION {
                break;
            }
            if elapsed >= SAMPLE_TARGET {
                let ns_per_iter = elapsed.as_nanos() as f64 / batch as f64;
                batch = ((SAMPLE_TARGET.as_nanos() as f64 / ns_per_iter).ceil() as u64).max(1);
                break;
            }
            batch = batch.saturating_mul(2);
        }

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / batch as f64);
        }
    }
}

/// One benchmark's aggregated timing, in nanoseconds per iteration.
struct BenchStats {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    p25_ns: f64,
    p75_ns: f64,
    samples: usize,
}

/// Linear-interpolated percentile of an already-sorted sample set.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

fn stats_of(id: String, samples: &[f64]) -> BenchStats {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len().max(1);
    let mean = samples.iter().sum::<f64>() / n as f64;
    BenchStats {
        id,
        mean_ns: mean,
        median_ns: percentile_sorted(&sorted, 0.50),
        min_ns: sorted.first().copied().unwrap_or(0.0),
        max_ns: sorted.last().copied().unwrap_or(0.0),
        p25_ns: percentile_sorted(&sorted, 0.25),
        p75_ns: percentile_sorted(&sorted, 0.75),
        samples: samples.len(),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    results: Vec<BenchStats>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Benchmarks `routine` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        routine(&mut bencher, input);
        self.record(id, &bencher.samples);
        self
    }

    /// Benchmarks a routine that needs no input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        routine(&mut bencher);
        self.record(id, &bencher.samples);
        self
    }

    fn record(&mut self, id: BenchmarkId, samples: &[f64]) {
        let stats = stats_of(id.id.clone(), samples);
        println!(
            "{}/{:<28} time: [median {} mean {} range {} .. {}]",
            self.name,
            stats.id,
            format_ns(stats.median_ns),
            format_ns(stats.mean_ns),
            format_ns(stats.min_ns),
            format_ns(stats.max_ns),
        );
        self.results.push(stats);
    }

    /// Finalizes the group, writing its JSON results file.
    pub fn finish(self) {
        let dir =
            std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| "target/criterion-shim".to_string());
        let dir = std::path::Path::new(&dir);
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let mut out = String::from("[\n");
        for (i, s) in self.results.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "  {{\"id\":{:?},\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"p25_ns\":{:.1},\"p75_ns\":{:.1},\"samples\":{}}}",
                s.id, s.mean_ns, s.median_ns, s.min_ns, s.max_ns, s.p25_ns, s.p75_ns, s.samples
            ));
        }
        out.push_str("\n]\n");
        let path = dir.join(format!("{}.json", self.name.replace('/', "_")));
        let _ = std::fs::write(path, out);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 20,
            results: Vec::new(),
            _criterion: self,
        }
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
