//! Offline shim for `serde_json`.
//!
//! JSON text encoding over the shim `serde` crate's [`Value`] data
//! model: [`to_string`] / [`to_string_pretty`] render a value tree,
//! [`from_str`] parses JSON with a recursive-descent parser. Floats are
//! printed with Rust's shortest round-trip formatting, so checkpoints
//! restore learned Q-values bit-exactly.

use std::fmt;

pub use serde::value::{Number, Value};

mod parse;

/// Error for serialization, deserialization, or parsing.
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl From<serde::value::ValueError> for Error {
    fn from(err: serde::value::ValueError) -> Self {
        Error::new(err.0)
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::value::to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &tree, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::value::to_value(value)?;
    let mut out = String::new();
    write_value(&mut out, &tree, Some("  "), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: for<'de> serde::Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let tree = parse::parse(input)?;
    Ok(serde::value::from_value(tree)?)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) if f.is_finite() => {
            // `{:?}` is Rust's shortest representation that round-trips
            // the exact bits — the float_roundtrip behaviour.
            out.push_str(&format!("{f:?}"));
        }
        // JSON has no NaN/Infinity; null matches serde_json's
        // arbitrary-precision fallback closest without erroring.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, level: usize) {
    let newline = |out: &mut String, level: usize| {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..level {
                out.push_str(pad);
            }
        }
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline(out, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline(out, level);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Num(Number::U(3))),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_string(), Value::String("x\"y\n".to_string())),
        ]);
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"{"a":3,"b":[true,null],"c":"x\"y\n"}"#);
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &f in &[0.1f64, 1.0 / 3.0, 1e-300, 6.02e23, -0.0, 123456.789012345] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "float {f} did not roundtrip");
        }
    }

    #[test]
    fn integers_stay_integers() {
        let json = to_string(&42u64).unwrap();
        assert_eq!(json, "42");
        let back: Value = from_str("42").unwrap();
        assert_eq!(back, Value::Num(Number::U(42)));
        let back: Value = from_str("-7").unwrap();
        assert_eq!(back, Value::Num(Number::I(-7)));
        let back: Value = from_str("2.5").unwrap();
        assert_eq!(back, Value::Num(Number::F(2.5)));
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = Value::Object(vec![(
            "outer".to_string(),
            Value::Array(vec![Value::Num(Number::U(1)), Value::Num(Number::U(2))]),
        )]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"outer\": [\n    1,\n    2\n  ]"));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""aéA\\""#).unwrap();
        assert_eq!(v, Value::String("aéA\\".to_string()));
    }
}
