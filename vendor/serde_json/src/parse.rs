//! Recursive-descent JSON parser producing shim `Value` trees.

use crate::Error;
use serde::value::{Number, Value};

pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u')?;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.error("invalid \\u escape"))?);
                        }
                        _ => return Err(self.error("unknown escape character")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.error("truncated \\u escape"))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.error("invalid hex digit in \\u escape"))?;
            cp = cp * 16 + digit;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| self.error("invalid number"))
    }
}
