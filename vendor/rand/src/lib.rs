//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! The build environment cannot reach crates.io, so this crate
//! re-implements exactly the surface the Megh workspace uses: the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, a deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), integer and
//! float `gen_range`, `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`; the
//! workspace never asserts on exact draw values, only on seeded
//! determinism, which this shim provides.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range by an RNG.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, bound)` without modulo bias (Lemire's method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection zone keeps the multiply-shift map exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn uniform_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                let offset = uniform_u64(rng, span);
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_u64(rng, span + 1);
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = uniform_f64(rng) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = uniform_f64(rng) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        uniform_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public-domain reference constants).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng`; equally seeded instances
    /// produce identical streams, which is the property the simulator
    /// and tests rely on.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0..1_000_000usize),
                b.gen_range(0..1_000_000usize)
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let draws_a: Vec<usize> = (0..16).map(|_| a.gen_range(0..1000)).collect();
        let draws_b: Vec<usize> = (0..16).map(|_| b.gen_range(0..1000)).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=4u32);
            assert!(y <= 4);
            let z = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn int_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            let expected = n / 10;
            assert!(
                (c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits = {hits}");
        assert_eq!((0..1000).filter(|_| rng.gen_bool(0.0)).count(), 0);
        assert_eq!((0..1000).filter(|_| rng.gen_bool(1.1)).count(), 1000);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
    }
}
