//! Offline shim for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate supplies
//! the subset of serde's API the Megh workspace uses, built on a single
//! concrete data model: every serializer consumes a [`value::Value`]
//! tree and every deserializer produces one. The trait *signatures*
//! match real serde (`fn serialize<S: Serializer>`, `de::Error::custom`,
//! …) so hand-written impls like `DokMatrix`'s compile unchanged; the
//! trait *contents* are reduced to one method each.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// Derive macros live in the macro namespace, so these re-exports do not
// collide with the traits of the same name.
pub use serde_derive::{Deserialize, Serialize};
