//! The concrete data model all shim (de)serializers share, plus the
//! bridge functions the derive macros generate calls to.

use crate::de::{Deserialize, Deserializer, Error as DeError};
use crate::ser::{Error as SerError, Serialize, Serializer};
use std::fmt;

/// A JSON-like number, kept tagged so integer round-trips are exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Signed integer (used for negatives).
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// Widens to `f64` (lossy for very large integers, like serde_json).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }

    /// The value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(_) => None,
        }
    }

    /// The value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(_) => None,
        }
    }
}

/// A fully materialised value tree.
///
/// Objects preserve insertion order in a `Vec` — the workspace never
/// merges keys, and ordered output keeps JSON diffs stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Num(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The array items, when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value widened to `f64`, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The numeric value as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The numeric value as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The boolean, when this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up an object key, returning `None` when absent or when
    /// this is not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Returns `&Value::Null` for missing keys, like serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Returns `&Value::Null` out of bounds, like serde_json.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

/// Error produced when bridging between Rust types and [`Value`].
#[derive(Debug, Clone)]
pub struct ValueError(pub String);

impl fmt::Display for ValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValueError {}

impl SerError for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

impl DeError for ValueError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ValueError(msg.to_string())
    }
}

/// Serializer that simply hands back the value tree.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = ValueError;

    fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
        Ok(value)
    }
}

/// Deserializer over an owned value tree.
pub struct ValueDeserializer(pub Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = ValueError;

    fn into_value(self) -> Result<Value, ValueError> {
        Ok(self.0)
    }
}

/// Renders any serializable type into a value tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, ValueError> {
    value.serialize(ValueSerializer)
}

/// Rebuilds a type from a value tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(value: Value) -> Result<T, ValueError> {
    T::deserialize(ValueDeserializer(value))
}

/// Removes and returns the named field from an object's pairs, or
/// `Value::Null` when absent (which lets `Option` fields default to
/// `None`, matching serde's behaviour for missing optional fields).
pub fn take_field(pairs: &mut Vec<(String, Value)>, name: &str) -> Value {
    match pairs.iter().position(|(k, _)| k == name) {
        Some(idx) => pairs.swap_remove(idx).1,
        None => Value::Null,
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.into_value()
    }
}
