//! Serialization half of the shim data model.

use crate::value::Value;
use std::fmt::Display;

/// Errors a [`Serializer`] may produce.
pub trait Error: Sized + Display {
    /// Builds an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A sink for one [`Value`] tree.
///
/// Real serde drives serializers through ~30 `serialize_*` methods; this
/// shim's single data model needs only one.
pub trait Serializer: Sized {
    /// The success type.
    type Ok;
    /// The error type.
    type Error: Error;

    /// Consumes a fully built value tree.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// Types that can render themselves into the shim data model.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

macro_rules! serialize_via_value {
    ($($t:ty => $conv:expr),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                #[allow(clippy::redundant_closure_call)]
                serializer.serialize_value(($conv)(self))
            }
        }
    )*};
}

use crate::value::Number;

serialize_via_value! {
    bool => |v: &bool| Value::Bool(*v),
    u8 => |v: &u8| Value::Num(Number::U(*v as u64)),
    u16 => |v: &u16| Value::Num(Number::U(*v as u64)),
    u32 => |v: &u32| Value::Num(Number::U(*v as u64)),
    u64 => |v: &u64| Value::Num(Number::U(*v)),
    usize => |v: &usize| Value::Num(Number::U(*v as u64)),
    i8 => |v: &i8| Value::Num(Number::I(*v as i64)),
    i16 => |v: &i16| Value::Num(Number::I(*v as i64)),
    i32 => |v: &i32| Value::Num(Number::I(*v as i64)),
    i64 => |v: &i64| Value::Num(Number::I(*v)),
    isize => |v: &isize| Value::Num(Number::I(*v as i64)),
    f32 => |v: &f32| Value::Num(Number::F(*v as f64)),
    f64 => |v: &f64| Value::Num(Number::F(*v)),
    char => |v: &char| Value::String(v.to_string()),
    str => |v: &str| Value::String(v.to_string()),
    String => |v: &String| Value::String(v.clone()),
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(inner) => inner.serialize(serializer),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

fn collect_seq<'a, S, I, T>(serializer: S, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: Iterator<Item = &'a T>,
    T: Serialize + 'a,
{
    let items = iter
        .map(|item| crate::value::to_value(item).map_err(S::Error::custom))
        .collect::<Result<Vec<Value>, S::Error>>()?;
    serializer.serialize_value(Value::Array(items))
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_seq(serializer, self.iter())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(crate::value::to_value(&self.$idx).map_err(S::Error::custom)?,)+
                ];
                serializer.serialize_value(Value::Array(items))
            }
        }
    )*};
}

serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

fn collect_map<'a, S, I, V>(serializer: S, iter: I) -> Result<S::Ok, S::Error>
where
    S: Serializer,
    I: Iterator<Item = (&'a String, &'a V)>,
    V: Serialize + 'a,
{
    let pairs = iter
        .map(|(k, v)| {
            crate::value::to_value(v)
                .map(|v| (k.clone(), v))
                .map_err(S::Error::custom)
        })
        .collect::<Result<Vec<(String, Value)>, S::Error>>()?;
    serializer.serialize_value(Value::Object(pairs))
}

impl<V: Serialize, H: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, H>
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Deterministic output: sort keys like serde_json's BTreeMap form.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        collect_map(serializer, entries.into_iter())
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        collect_map(serializer, self.iter())
    }
}
