//! Deserialization half of the shim data model.

use crate::value::{Number, Value};
use std::fmt::Display;

/// Errors a [`Deserializer`] may produce.
pub trait Error: Sized + Display {
    /// Builds an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A source of one [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    /// The error type.
    type Error: Error;

    /// Produces the full value tree this deserializer holds.
    fn into_value(self) -> Result<Value, Self::Error>;
}

/// Types that can rebuild themselves from the shim data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

fn type_error<E: Error>(expected: &str, got: &Value) -> E {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::Num(_) => "a number",
        Value::String(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    };
    E::custom(format!("expected {expected}, found {kind}"))
}

macro_rules! deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.into_value()?;
                let out = match &value {
                    Value::Num(Number::U(u)) => <$t>::try_from(*u).ok(),
                    Value::Num(Number::I(i)) => u64::try_from(*i).ok().and_then(|u| <$t>::try_from(u).ok()),
                    // Integral floats appear when a tree was built via f64
                    // arithmetic; accept them when exact.
                    Value::Num(Number::F(f)) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        <$t>::try_from(*f as u64).ok()
                    }
                    _ => return Err(type_error(stringify!($t), &value)),
                };
                out.ok_or_else(|| D::Error::custom(format!(
                    "number out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.into_value()?;
                let out = match &value {
                    Value::Num(Number::I(i)) => <$t>::try_from(*i).ok(),
                    Value::Num(Number::U(u)) => i64::try_from(*u).ok().and_then(|i| <$t>::try_from(i).ok()),
                    Value::Num(Number::F(f)) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
                        <$t>::try_from(*f as i64).ok()
                    }
                    _ => return Err(type_error(stringify!($t), &value)),
                };
                out.ok_or_else(|| D::Error::custom(format!(
                    "number out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, isize);

macro_rules! deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.into_value()?;
                match value {
                    Value::Num(n) => Ok(n.as_f64() as $t),
                    _ => Err(type_error(stringify!($t), &value)),
                }
            }
        }
    )*};
}

deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        match value {
            Value::Bool(b) => Ok(b),
            _ => Err(type_error("bool", &value)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        match value {
            Value::String(s) => Ok(s),
            _ => Err(type_error("a string", &value)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        match &value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(type_error("a single-character string", &value)),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        match value {
            Value::Null => Ok(None),
            other => crate::value::from_value(other)
                .map(Some)
                .map_err(D::Error::custom),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        match value {
            Value::Array(items) => items
                .into_iter()
                .map(|item| crate::value::from_value(item).map_err(D::Error::custom))
                .collect(),
            _ => Err(type_error("an array", &value)),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal: $($name:ident),+))*) => {$(
        impl<'de, $($name: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.into_value()?;
                match value {
                    Value::Array(items) if items.len() == $len => {
                        let mut iter = items.into_iter();
                        Ok(($(
                            {
                                let item = iter.next().unwrap();
                                let field: $name =
                                    crate::value::from_value(item).map_err(D::Error::custom)?;
                                field
                            },
                        )+))
                    }
                    Value::Array(items) => Err(D::Error::custom(format!(
                        "expected an array of length {}, found length {}",
                        $len,
                        items.len()
                    ))),
                    _ => Err(type_error("an array", &value)),
                }
            }
        }
    )*};
}

deserialize_tuple! {
    (2: T0, T1)
    (3: T0, T1, T2)
    (4: T0, T1, T2, T3)
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        crate::value::from_value(value)
            .map(std::sync::Arc::new)
            .map_err(D::Error::custom)
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for std::rc::Rc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        crate::value::from_value(value)
            .map(std::rc::Rc::new)
            .map_err(D::Error::custom)
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.into_value()?;
        crate::value::from_value(value)
            .map(Box::new)
            .map_err(D::Error::custom)
    }
}

fn deserialize_pairs<E: Error, V: for<'a> Deserialize<'a>>(
    value: Value,
) -> Result<Vec<(String, V)>, E> {
    match value {
        Value::Object(pairs) => pairs
            .into_iter()
            .map(|(k, v)| {
                crate::value::from_value(v)
                    .map(|v| (k, v))
                    .map_err(E::custom)
            })
            .collect(),
        _ => Err(type_error("an object", &value)),
    }
}

impl<'de, V: for<'a> Deserialize<'a>, H: std::hash::BuildHasher + Default> Deserialize<'de>
    for std::collections::HashMap<String, V, H>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs: Vec<(String, V)> = deserialize_pairs(deserializer.into_value()?)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<'de, V: for<'a> Deserialize<'a>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let pairs: Vec<(String, V)> = deserialize_pairs(deserializer.into_value()?)?;
        Ok(pairs.into_iter().collect())
    }
}
