//! The Google Cluster scenario: short-lived, low-utilization tasks with
//! staggered starts (Figure 1(b)'s 10¹–10⁶ s duration spread). Shows the
//! paper's counter-intuitive §6.3 finding — for this workload the
//! cheapest policy keeps VMs *spread over more hosts*, trading a little
//! idle power for far fewer overloads and migrations.
//!
//! Run with: `cargo run --release --example google_cluster`

use megh::baselines::{MmtFlavor, MmtScheduler};
use megh::core::{MeghAgent, MeghConfig};
use megh::sim::{DataCenterConfig, InitialPlacement, Simulation};
use megh::trace::{DurationStats, GoogleConfig, TraceStats};

fn main() {
    let (hosts, vms) = (40, 120);
    let generator = GoogleConfig::new(vms, 99);
    let trace = generator.generate(3);

    // Workload characterisation (Figure 1(b) in miniature).
    let stats = TraceStats::compute(&trace);
    let durations = DurationStats::from_durations(&generator.sample_task_durations(5000), 1);
    println!(
        "workload: mean {:.1} % utilization, task durations spanning {:.1} decades",
        stats.overall_mean,
        durations.decades_spanned()
    );

    let mut config = DataCenterConfig::paper_google(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;
    let sim = Simulation::new(config, trace).expect("consistent setup");

    let thr = sim.run(MmtScheduler::new(MmtFlavor::Thr)).report();
    let megh = sim
        .run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts)))
        .report();

    for r in [&thr, &megh] {
        println!(
            "{:<8} total {:>8.2} USD  migrations {:>6}  active hosts {:>5.1}",
            r.scheduler, r.total_cost_usd, r.total_migrations, r.mean_active_hosts
        );
    }
    println!(
        "\nMegh keeps {:.1}x more hosts active than THR-MMT yet costs {:.1} % less —\n\
         the §6.3 observation that consolidation is the wrong move for short,\n\
         low-load tasks.",
        megh.mean_active_hosts / thr.mean_active_hosts.max(1.0),
        100.0 * (thr.total_cost_usd - megh.total_cost_usd) / thr.total_cost_usd
    );
}
