//! The paper's PlanetLab scenario in miniature: a week of bursty,
//! continuously-running workloads, comparing Megh against the strongest
//! heuristic of Tables 2–3 (THR-MMT) and the no-migration floor.
//!
//! Run with: `cargo run --release --example planetlab_week`

use megh::baselines::{MmtFlavor, MmtScheduler};
use megh::core::{MeghAgent, MeghConfig};
use megh::sim::{DataCenterConfig, InitialPlacement, NoOpScheduler, Simulation, SummaryReport};
use megh::trace::PlanetLabConfig;

fn main() {
    let (hosts, vms) = (60, 80);
    let trace = PlanetLabConfig::new(vms, 2024).generate(7);
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;
    let sim = Simulation::new(config, trace).expect("consistent setup");

    let reports: Vec<SummaryReport> = vec![
        sim.run(NoOpScheduler).report(),
        sim.run(MmtScheduler::new(MmtFlavor::Thr)).report(),
        sim.run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts)))
            .report(),
    ];

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14} {:>10}",
        "scheduler", "total USD", "energy USD", "SLA USD", "#migrations", "exec ms"
    );
    for r in &reports {
        println!(
            "{:<10} {:>12.2} {:>12.2} {:>12.2} {:>14} {:>10.3}",
            r.scheduler,
            r.total_cost_usd,
            r.energy_cost_usd,
            r.sla_cost_usd,
            r.total_migrations,
            r.mean_decision_ms
        );
    }

    let comparison = reports[2].relative_to(&reports[1]);
    println!(
        "\nMegh vs THR-MMT: {:.1} % cheaper, {:.0}x fewer migrations, \
         decisions in {:.0} % of the time",
        comparison.cost_reduction_percent,
        comparison.migration_ratio,
        100.0 * comparison.execution_time_fraction,
    );
}
