//! Extending the library: writing your own migration scheduler.
//!
//! Anything implementing `megh::sim::Scheduler` plugs into the same
//! simulation, cost model, and benchmark harness as Megh and the paper's
//! baselines. This example builds a tiny "least-loaded spreader" that
//! moves one VM per step off the hottest host, and races it against
//! Megh.
//!
//! Run with: `cargo run --release --example custom_scheduler`

use megh::core::{MeghAgent, MeghConfig};
use megh::sim::{
    DataCenterConfig, DataCenterView, InitialPlacement, MigrationRequest, Scheduler, Simulation,
};
use megh::trace::PlanetLabConfig;

/// Moves the smallest VM from the most-utilized host to the
/// least-utilized awake host, once per step, whenever the hottest host
/// is above the β threshold.
#[derive(Debug, Default)]
struct Spreader;

impl Scheduler for Spreader {
    fn name(&self) -> &str {
        "Spreader"
    }

    fn decide(&mut self, view: &DataCenterView) -> Vec<MigrationRequest> {
        let hottest = view
            .hosts()
            .filter(|&h| view.is_overloaded(h))
            .max_by(|&a, &b| {
                view.host_utilization(a)
                    .partial_cmp(&view.host_utilization(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        let Some(source) = hottest else {
            return Vec::new();
        };
        let Some(vm) = view.vms_on(source).into_iter().min_by(|&a, &b| {
            view.vm_ram_mb(a)
                .partial_cmp(&view.vm_ram_mb(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        }) else {
            return Vec::new();
        };
        let target = view
            .hosts()
            .filter(|&h| h != source && view.fits_after_migration(vm, h))
            .min_by(|&a, &b| {
                view.host_utilization(a)
                    .partial_cmp(&view.host_utilization(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        match target {
            Some(t) => vec![MigrationRequest::new(vm, t)],
            None => Vec::new(),
        }
    }
}

fn main() {
    let (hosts, vms) = (30, 40);
    let trace = PlanetLabConfig::new(vms, 5).generate(2);
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;
    let sim = Simulation::new(config, trace).expect("consistent setup");

    let custom = sim.run(Spreader).report();
    let megh = sim
        .run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts)))
        .report();

    for r in [&custom, &megh] {
        println!(
            "{:<9} total {:>8.2} USD  migrations {:>5}  exec {:>7.3} ms",
            r.scheduler, r.total_cost_usd, r.total_migrations, r.mean_decision_ms
        );
    }
}
