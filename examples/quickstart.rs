//! Quickstart: simulate one day of a small cloud under Megh.
//!
//! Builds a 20-host/40-VM data center driven by a synthetic
//! PlanetLab-like workload, runs the Megh scheduler over one simulated
//! day, and prints the summary a paper table row is made of.
//!
//! Run with: `cargo run --release --example quickstart`

use megh::core::{MeghAgent, MeghConfig};
use megh::sim::{DataCenterConfig, InitialPlacement, Simulation};
use megh::trace::PlanetLabConfig;

fn main() {
    // 1. A workload: 40 VMs, one day at 5-minute resolution.
    let trace = PlanetLabConfig::new(40, 7).generate(1);

    // 2. A data center: 20 hosts (half HP ProLiant G4, half G5), the
    //    paper's cost model, and CloudSim-style demand-packed start.
    let mut config = DataCenterConfig::paper_planetlab(20, 40);
    config.initial_placement = InitialPlacement::DemandPacked;

    // 3. The Megh agent with the paper's hyper-parameters
    //    (γ = 0.5, Temp₀ = 3, ε = 0.01).
    let mut agent = MeghAgent::new(MeghConfig::paper_defaults(40, 20));

    // 4. Run and report.
    let sim = Simulation::new(config, trace).expect("consistent setup");
    let outcome = sim.run(&mut agent);
    let report = outcome.report();

    println!("scheduler:          {}", report.scheduler);
    println!("steps simulated:    {}", report.steps);
    println!("total cost:         {:.2} USD", report.total_cost_usd);
    println!("  energy:           {:.2} USD", report.energy_cost_usd);
    println!("  SLA paybacks:     {:.2} USD", report.sla_cost_usd);
    println!("VM migrations:      {}", report.total_migrations);
    println!("mean active hosts:  {:.1}", report.mean_active_hosts);
    println!("mean decision time: {:.3} ms", report.mean_decision_ms);
    println!("Q-table non-zeros:  {}", agent.qtable_nnz());

    // The per-step records back every figure in the paper; here, show
    // the learning effect: late per-step costs at or below early ones.
    let early: f64 = outcome.records()[..24]
        .iter()
        .map(|r| r.total_cost_usd)
        .sum::<f64>()
        / 24.0;
    let late: f64 = outcome.records()[report.steps - 24..]
        .iter()
        .map(|r| r.total_cost_usd)
        .sum::<f64>()
        / 24.0;
    println!("per-step cost, first 2 h: {early:.4} USD, last 2 h: {late:.4} USD");
}
