//! Q-learning needs offline training; Megh does not.
//!
//! §2.2 of the paper dismisses tabular Q-learning because it "has to go
//! through computationally expensive training periods" before it can be
//! used online. This example makes that concrete: the same Q-learning
//! agent is evaluated cold (untrained) and after offline episodes on the
//! training workload, next to Megh which learns as-it-goes on its very
//! first pass.
//!
//! Run with: `cargo run --release --example qlearning_offline`

use megh::baselines::{QLearningConfig, QLearningScheduler};
use megh::core::{MeghAgent, MeghConfig};
use megh::sim::{DataCenterConfig, InitialPlacement, Simulation};
use megh::trace::PlanetLabConfig;

fn main() {
    let (hosts, vms) = (30, 40);
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;

    // Train and evaluate on different weeks of the same workload family
    // (the honest protocol: no peeking at the evaluation trace).
    let train_trace = PlanetLabConfig::new(vms, 1).generate(2);
    let eval_trace = PlanetLabConfig::new(vms, 2).generate(2);
    let train_sim = Simulation::new(config.clone(), train_trace).expect("consistent setup");
    let eval_sim = Simulation::new(config, eval_trace).expect("consistent setup");

    // Cold Q-learning: acts on an empty table.
    let cold = eval_sim
        .run(QLearningScheduler::new(QLearningConfig::default()))
        .report();

    // Trained Q-learning: 10 offline episodes first.
    let mut trained_agent = QLearningScheduler::new(QLearningConfig::default());
    trained_agent.train(&train_sim, 10);
    let trained = eval_sim.run(trained_agent).report();

    // Megh: no training phase at all.
    let megh = eval_sim
        .run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts)))
        .report();

    println!("{:<22} {:>10} {:>12}", "agent", "total USD", "#migrations");
    println!(
        "{:<22} {:>10.2} {:>12}",
        "Q-learning (cold)", cold.total_cost_usd, cold.total_migrations
    );
    println!(
        "{:<22} {:>10.2} {:>12}",
        "Q-learning (trained)", trained.total_cost_usd, trained.total_migrations
    );
    println!(
        "{:<22} {:>10.2} {:>12}",
        "Megh (no training)", megh.total_cost_usd, megh.total_migrations
    );
}
