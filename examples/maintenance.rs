//! Failure injection: a host goes down for maintenance mid-run.
//!
//! Schedules an outage on the busiest host and shows how THR-MMT and
//! Megh cope: the heuristic evacuates within one observation interval;
//! Megh, being model-free, pays downtime until its random exploration
//! happens to move the stranded VMs. The structured event log shows the
//! evacuation as it happens.
//!
//! Run with: `cargo run --release --example maintenance`

use megh::baselines::{MmtFlavor, MmtScheduler};
use megh::core::{MeghAgent, MeghConfig};
use megh::sim::{DataCenterConfig, HostOutage, InitialPlacement, Simulation};
use megh::trace::PlanetLabConfig;

fn main() {
    let (hosts, vms) = (10, 20);
    let trace = PlanetLabConfig::new(vms, 77).generate_steps(144); // half a day
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;
    // Host 0 (the first-fit anchor, busiest) goes down for two hours.
    config.outages = vec![HostOutage {
        host: 0,
        from_step: 48,
        until_step: 72,
    }];
    let sim = Simulation::new(config, trace).expect("consistent setup");

    for outcome in [
        sim.run(MmtScheduler::new(MmtFlavor::Thr)),
        sim.run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts))),
    ] {
        let report = outcome.report();
        let outage_migrations: usize = outcome.events()[48..52]
            .iter()
            .map(|e| e.migrations.len())
            .sum();
        let worst_downtime = outcome
            .vm_downtime_seconds()
            .iter()
            .cloned()
            .fold(0.0, f64::max);
        println!(
            "{:<8} total {:>7.2} USD  SLA {:>7.2} USD  migrations in outage window: {:<3} \
             worst VM downtime {:>7.0} s",
            report.scheduler,
            report.total_cost_usd,
            report.sla_cost_usd,
            outage_migrations,
            worst_downtime
        );
    }
    println!("\nTHR-MMT evacuates the down host immediately; Megh has no failure");
    println!("model and relies on exploration, so stranded VMs pay the outage.");
}
