//! Failure injection and pathological-input tests: the simulator and
//! schedulers must either reject bad setups with typed errors or
//! degrade gracefully, never panic or produce nonsense accounting.

use megh::baselines::{MadVmConfig, MadVmScheduler, MmtFlavor, MmtScheduler};
use megh::core::{MeghAgent, MeghConfig};
use megh::sim::{
    DataCenterConfig, InitialPlacement, NoOpScheduler, Scheduler, SimError, Simulation, VmSpec,
};
use megh::trace::WorkloadTrace;

fn flat(n_vms: usize, steps: usize, util: f64) -> WorkloadTrace {
    WorkloadTrace::from_rows(300, vec![vec![util; steps]; n_vms]).unwrap()
}

#[test]
fn zero_capacity_host_is_rejected() {
    let mut config = DataCenterConfig::paper_planetlab(2, 2);
    config.pms[0].mips = 0.0;
    assert_eq!(
        Simulation::new(config, flat(2, 3, 10.0)).unwrap_err(),
        SimError::InvalidHost(0)
    );
}

#[test]
fn hosts_without_vms_cost_nothing() {
    let config = DataCenterConfig::paper_planetlab(5, 0);
    let trace = WorkloadTrace::from_rows(300, vec![]).unwrap();
    let outcome = Simulation::new(config, trace).unwrap().run(NoOpScheduler);
    assert_eq!(outcome.report().total_cost_usd, 0.0);
    // A trace with no VMs has no steps at all.
    assert!(outcome.records().is_empty());
}

#[test]
fn vms_without_hosts_are_rejected() {
    let mut config = DataCenterConfig::paper_planetlab(0, 2);
    config.pms.clear();
    assert_eq!(
        Simulation::new(config, flat(2, 3, 10.0)).unwrap_err(),
        SimError::NoHosts
    );
}

#[test]
fn explicit_placement_out_of_range_is_rejected() {
    let mut config = DataCenterConfig::paper_planetlab(2, 2);
    config.initial_placement = InitialPlacement::Explicit(vec![0, 5]);
    assert_eq!(
        Simulation::new(config, flat(2, 3, 10.0)).unwrap_err(),
        SimError::PlacementHostOutOfRange {
            vm: 1,
            host: 5,
            n_hosts: 2
        }
    );
}

#[test]
fn explicit_placement_with_wrong_length_is_rejected() {
    let mut config = DataCenterConfig::paper_planetlab(2, 3);
    config.initial_placement = InitialPlacement::Explicit(vec![0, 1]);
    assert_eq!(
        Simulation::new(config, flat(3, 3, 10.0)).unwrap_err(),
        SimError::PlacementLengthMismatch {
            n_vms: 3,
            listed: 2
        }
    );
}

#[test]
fn all_zero_workload_is_stable_for_all_schedulers() {
    let (hosts, vms) = (4, 6);
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;
    let sim = Simulation::new(config, flat(vms, 30, 0.0)).unwrap();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(MmtScheduler::new(MmtFlavor::Thr)),
        Box::new(MadVmScheduler::new(MadVmConfig::default())),
        Box::new(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts))),
    ];
    for mut s in schedulers {
        let outcome = sim.run(&mut *s);
        let report = outcome.report();
        // Idle VMs never cause capacity-deficit downtime; the only SLA
        // exposure is the §3.3 live-migration downtime itself ("each
        // migration may cause some SLA violation"), bounded by the
        // migration count.
        let max_tm = 2560.0 * 8.0 / 1000.0; // largest VM over 1 Gbps
        let downtime_bound = report.total_migrations as f64 * 0.1 * max_tm + 1e-9;
        let total_downtime: f64 = outcome.vm_downtime_seconds().iter().sum();
        assert!(
            total_downtime <= downtime_bound,
            "{}: downtime {total_downtime} exceeds migration-only bound {downtime_bound}",
            report.scheduler
        );
        assert!(
            report.energy_cost_usd > 0.0,
            "{}: awake hosts draw idle power",
            report.scheduler
        );
    }
}

#[test]
fn saturated_workload_is_survivable() {
    // Every VM at 100 % forever on an under-provisioned data center:
    // accounting must stay finite and bounded.
    let (hosts, vms) = (2, 8);
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.vms = vec![VmSpec::new(2500.0, 1024.0, 100.0); vms];
    config.initial_placement = InitialPlacement::RoundRobin;
    let sim = Simulation::new(config, flat(vms, 30, 100.0)).unwrap();
    for outcome in [
        sim.run(MmtScheduler::new(MmtFlavor::Thr)),
        sim.run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts))),
    ] {
        let report = outcome.report();
        assert!(report.total_cost_usd.is_finite());
        assert!(report.sla_cost_usd > 0.0, "permanent overload must cost");
        for (d, r) in outcome
            .vm_downtime_seconds()
            .iter()
            .zip(outcome.vm_requested_seconds())
        {
            assert!(d <= r, "downtime cannot exceed requested time");
        }
    }
}

#[test]
fn single_vm_single_host_degenerate_case() {
    let mut config = DataCenterConfig::paper_planetlab(1, 1);
    config.vms = vec![VmSpec::new(1000.0, 512.0, 100.0)];
    let sim = Simulation::new(config, flat(1, 10, 50.0)).unwrap();
    for outcome in [
        sim.run(MmtScheduler::new(MmtFlavor::Thr)),
        sim.run(MeghAgent::new(MeghConfig::paper_defaults(1, 1))),
    ] {
        // Nowhere to migrate: zero migrations, sane costs.
        assert_eq!(outcome.report().total_migrations, 0);
        assert!(outcome.report().total_cost_usd > 0.0);
    }
}

#[test]
fn migration_cap_zero_freezes_placement() {
    let (hosts, vms) = (4, 6);
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.migration_cap_fraction = 0.0;
    let sim = Simulation::new(config, flat(vms, 20, 90.0)).unwrap();
    let outcome = sim.run(MmtScheduler::new(MmtFlavor::Thr));
    assert_eq!(outcome.report().total_migrations, 0);
    assert_eq!(outcome.final_placement(), sim.initial_placement());
}

#[test]
fn malicious_scheduler_cannot_corrupt_state() {
    /// Emits garbage requests: out-of-range VMs and hosts, duplicates,
    /// self-migrations — all must be ignored.
    struct Chaos;
    impl Scheduler for Chaos {
        fn name(&self) -> &str {
            "Chaos"
        }
        fn decide(&mut self, view: &megh::sim::DataCenterView) -> Vec<megh::sim::MigrationRequest> {
            use megh::sim::{MigrationRequest, PmId, VmId};
            vec![
                MigrationRequest::new(VmId(usize::MAX), PmId(0)),
                MigrationRequest::new(VmId(0), PmId(usize::MAX)),
                MigrationRequest::new(VmId(0), view.host_of(VmId(0))),
                MigrationRequest::new(VmId(0), PmId(1)),
                MigrationRequest::new(VmId(0), PmId(2)),
            ]
        }
    }
    let config = DataCenterConfig::paper_planetlab(3, 2);
    let sim = Simulation::new(config, flat(2, 5, 10.0)).unwrap();
    let outcome = sim.run(Chaos);
    // Only the first valid, non-duplicate request per VM per step lands.
    assert_eq!(outcome.records()[0].migrations, 1);
    for &h in outcome.final_placement() {
        assert!(h < 3);
    }
}

#[test]
fn host_outage_is_evacuated_by_mmt() {
    use megh::sim::HostOutage;
    let (hosts, vms) = (4, 6);
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.vms = vec![VmSpec::new(500.0, 512.0, 100.0); vms];
    config.initial_placement = InitialPlacement::Explicit(vec![0; vms]);
    config.outages = vec![HostOutage {
        host: 0,
        from_step: 2,
        until_step: 30,
    }];
    let sim = Simulation::new(config, flat(vms, 30, 20.0)).unwrap();
    let outcome = sim.run(MmtScheduler::new(MmtFlavor::Thr));
    // Every VM must have left host 0 once the outage began.
    assert!(
        outcome.final_placement().iter().all(|&h| h != 0),
        "VMs remain on the down host: {:?}",
        outcome.final_placement()
    );
    // The event log records the outage and the evacuation migrations.
    let step2 = &outcome.events()[2];
    assert_eq!(step2.hosts_down, vec![0]);
    assert!(
        !step2.migrations.is_empty(),
        "evacuation must start at the outage"
    );
    // Downtime accrued only briefly (one detection interval at most).
    let max_downtime = outcome
        .vm_downtime_seconds()
        .iter()
        .cloned()
        .fold(0.0, f64::max);
    assert!(
        max_downtime <= 2.0 * 300.0 + 60.0,
        "max downtime {max_downtime}"
    );
    // The down host draws no energy during the outage.
    let host0_joules = outcome.host_energy_joules()[0];
    // Host 0 was up for steps 0–1 only (≈ 2 intervals of ≤ 117 W).
    assert!(host0_joules <= 2.0 * 300.0 * 117.0 + 1.0);
}

#[test]
fn outage_without_scheduler_reaction_costs_downtime() {
    use megh::sim::HostOutage;
    let mut config = DataCenterConfig::paper_planetlab(2, 2);
    config.vms = vec![VmSpec::new(500.0, 512.0, 100.0); 2];
    config.initial_placement = InitialPlacement::Explicit(vec![0, 0]);
    config.outages = vec![HostOutage {
        host: 0,
        from_step: 0,
        until_step: 10,
    }];
    let sim = Simulation::new(config, flat(2, 10, 20.0)).unwrap();
    let outcome = sim.run(NoOpScheduler);
    // Full downtime for the whole outage.
    for &d in outcome.vm_downtime_seconds() {
        assert!((d - 10.0 * 300.0).abs() < 1e-6, "downtime {d}");
    }
    assert!(outcome.report().sla_cost_usd > 0.0);
    assert_eq!(outcome.report().total_migrations, 0);
}

#[test]
fn invalid_outage_is_rejected() {
    use megh::sim::HostOutage;
    let mut config = DataCenterConfig::paper_planetlab(2, 2);
    config.outages = vec![HostOutage {
        host: 9,
        from_step: 0,
        until_step: 5,
    }];
    assert!(matches!(
        Simulation::new(config, flat(2, 5, 10.0)).unwrap_err(),
        SimError::InvalidParameter(_)
    ));
    let mut config = DataCenterConfig::paper_planetlab(2, 2);
    config.outages = vec![HostOutage {
        host: 0,
        from_step: 5,
        until_step: 5,
    }];
    assert!(Simulation::new(config, flat(2, 5, 10.0)).is_err());
}

#[test]
fn megh_handles_trace_shorter_than_temperature_decay() {
    // 3 steps only: the agent must not assume a long horizon.
    let (hosts, vms) = (3, 4);
    let config = DataCenterConfig::paper_planetlab(hosts, vms);
    let sim = Simulation::new(config, flat(vms, 3, 20.0)).unwrap();
    let mut agent = MeghAgent::new(MeghConfig::paper_defaults(vms, hosts));
    let outcome = sim.run(&mut agent);
    assert_eq!(outcome.records().len(), 3);
    assert_eq!(agent.steps(), 3);
}
