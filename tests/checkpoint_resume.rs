//! Operational continuity: a long-running Megh controller must survive
//! a restart mid-week via checkpoint/restore and keep scheduling
//! sensibly on the remainder of the workload.

use megh::core::MeghAgent;
use megh::prelude::*;

#[test]
fn checkpointed_agent_resumes_mid_week() {
    let (hosts, vms) = (6, 10);
    let full_trace = PlanetLabConfig::new(vms, 123).generate_steps(200);
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;

    // Phase 1: run the first half, checkpoint through JSON (the full
    // persistence path, not just a clone).
    let first_half = Simulation::new(config.clone(), full_trace.truncated(100)).unwrap();
    let mut agent = MeghAgent::new(MeghConfig::paper_defaults(vms, hosts));
    let outcome_a = first_half.run(&mut agent);
    let learned_nnz = agent.qtable_nnz();
    assert!(learned_nnz > 0);
    let json = serde_json::to_string(&agent.checkpoint()).unwrap();

    // Phase 2: "restart" — restore from the serialized checkpoint and
    // continue on the rest of the week (modelled as a fresh simulation
    // seeded with the first half's final placement).
    let second_half_trace = megh::trace::WorkloadTrace::from_rows(
        300,
        (0..vms)
            .map(|vm| full_trace.vm_row(vm)[100..].to_vec())
            .collect(),
    )
    .unwrap();
    let mut resumed = MeghAgent::restore(serde_json::from_str(&json).unwrap(), 7);
    assert_eq!(
        resumed.qtable_nnz(),
        learned_nnz,
        "knowledge must survive restart"
    );
    let mut config_b = config.clone();
    config_b.initial_placement = InitialPlacement::Explicit(outcome_a.final_placement().to_vec());
    let second_half = Simulation::new(config_b, second_half_trace).unwrap();
    let outcome_b = second_half.run(&mut resumed);

    // The resumed agent keeps learning (Q-table grows further) and
    // keeps costs in the same regime as the first half.
    assert!(resumed.qtable_nnz() > learned_nnz, "learning must continue");
    assert_eq!(outcome_b.records().len(), 100);
    let mean = |o: &megh::sim::SimulationOutcome| {
        o.records().iter().map(|r| r.total_cost_usd).sum::<f64>() / o.records().len() as f64
    };
    let (a, b) = (mean(&outcome_a), mean(&outcome_b));
    assert!(
        b < a * 3.0 + 1.0,
        "resumed phase cost exploded: {b} vs first-half {a}"
    );
    // And the temperature kept decaying from where it left off rather
    // than resetting to Temp0 = 3.
    assert!(resumed.temperature() < 3.0 * (-0.01f64 * 150.0).exp());
}
