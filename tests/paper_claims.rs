//! Shape-level assertions of the paper's headline claims, at scales
//! small enough for CI. These are the §6 results the benchmark harness
//! reproduces in full; here we pin the *directions* so regressions in
//! any crate surface immediately.

use megh::baselines::{MadVmConfig, MadVmScheduler, MmtFlavor, MmtScheduler};
use megh::core::{MeghAgent, MeghConfig};
use megh::sim::{DataCenterConfig, InitialPlacement, Simulation};
use megh::trace::{GoogleConfig, PlanetLabConfig};

fn planetlab_sim(hosts: usize, vms: usize, steps: usize, seed: u64) -> Simulation {
    let trace = PlanetLabConfig::new(vms, seed).generate_steps(steps);
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;
    Simulation::new(config, trace).expect("consistent setup")
}

/// Tables 2–3: Megh issues orders of magnitude fewer migrations than
/// the MMT heuristics.
#[test]
fn megh_migrates_far_less_than_mmt() {
    let (hosts, vms, steps) = (40, 52, 300);
    let sim = planetlab_sim(hosts, vms, steps, 42);
    let thr = sim.run(MmtScheduler::new(MmtFlavor::Thr)).report();
    let megh = sim
        .run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts)))
        .report();
    assert!(
        thr.total_migrations as f64 >= 3.0 * megh.total_migrations as f64,
        "THR {} vs Megh {}",
        thr.total_migrations,
        megh.total_migrations
    );
    // Megh issues at most ~one action per step.
    assert!(megh.total_migrations <= steps);
}

/// Tables 2–3 + Figure 6: Megh's decisions are faster than THR-MMT's.
#[test]
fn megh_decides_faster_than_thr_mmt() {
    let (hosts, vms, steps) = (100, 130, 60);
    let sim = planetlab_sim(hosts, vms, steps, 43);
    let thr = sim.run(MmtScheduler::new(MmtFlavor::Thr)).report();
    let megh = sim
        .run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts)))
        .report();
    assert!(
        megh.mean_decision_ms < thr.mean_decision_ms,
        "Megh {} ms vs THR {} ms",
        megh.mean_decision_ms,
        thr.mean_decision_ms
    );
}

/// Figures 4(d)/5(d): MadVM's per-step execution time dwarfs Megh's.
#[test]
fn madvm_is_orders_of_magnitude_slower_than_megh() {
    let (hosts, vms, steps) = (50, 75, 40);
    let sim = planetlab_sim(hosts, vms, steps, 44);
    let madvm = sim
        .run(MadVmScheduler::new(MadVmConfig::default()))
        .report();
    let megh = sim
        .run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts)))
        .report();
    assert!(
        madvm.mean_decision_ms > 10.0 * megh.mean_decision_ms,
        "MadVM {} ms vs Megh {} ms",
        madvm.mean_decision_ms,
        megh.mean_decision_ms
    );
}

/// Tables 2–3 / Figures 2(a)–3(a): Megh's cumulative operation cost
/// beats THR-MMT's, and its per-step cost series has lower variance
/// ("not only converges faster … but also has less variance").
#[test]
fn megh_beats_thr_mmt_on_cost_and_variance() {
    let (hosts, vms, steps) = (40, 52, 500);
    let sim = planetlab_sim(hosts, vms, steps, 45);
    let thr = sim.run(MmtScheduler::new(MmtFlavor::Thr));
    let megh = sim.run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts)));
    assert!(
        megh.report().total_cost_usd < thr.report().total_cost_usd,
        "Megh {:.2} vs THR {:.2}",
        megh.report().total_cost_usd,
        thr.report().total_cost_usd
    );
    let variance = |o: &megh::sim::SimulationOutcome| {
        let costs: Vec<f64> = o.records().iter().map(|r| r.total_cost_usd).collect();
        let m = costs.iter().sum::<f64>() / costs.len() as f64;
        costs.iter().map(|c| (c - m).powi(2)).sum::<f64>() / costs.len() as f64
    };
    assert!(
        variance(&megh) < variance(&thr),
        "Megh var {:.6} vs THR var {:.6}",
        variance(&megh),
        variance(&thr)
    );
}

/// Table 3 / Figure 3(c): on the Google workload Megh keeps *more*
/// hosts active than consolidating THR-MMT — §6.3's counter-intuitive
/// observation.
#[test]
fn google_workload_rewards_spreading() {
    let (hosts, vms, steps) = (30, 90, 300);
    let trace = GoogleConfig::new(vms, 46).generate_steps(steps);
    let mut config = DataCenterConfig::paper_google(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;
    let sim = Simulation::new(config, trace).unwrap();
    let thr = sim.run(MmtScheduler::new(MmtFlavor::Thr)).report();
    let megh = sim
        .run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts)))
        .report();
    assert!(
        megh.mean_active_hosts > thr.mean_active_hosts,
        "Megh {} vs THR {}",
        megh.mean_active_hosts,
        thr.mean_active_hosts
    );
}

/// Figure 7: Megh's Q-table grows roughly linearly with time.
#[test]
fn qtable_growth_is_linear_in_time() {
    let (hosts, vms) = (20, 20);
    let sim = planetlab_sim(hosts, vms, 400, 47);
    let mut agent = MeghAgent::new(MeghConfig::paper_defaults(vms, hosts));
    // Measure nnz at 1/2 horizon and full horizon via two fresh runs
    // (the agent is deterministic under its seed).
    sim.run_steps(
        &mut MeghAgent::new(MeghConfig::paper_defaults(vms, hosts)),
        200,
    );
    let mut half_agent = MeghAgent::new(MeghConfig::paper_defaults(vms, hosts));
    sim.run_steps(&mut half_agent, 200);
    sim.run(&mut agent);
    let half = half_agent.qtable_nnz() as f64;
    let full = agent.qtable_nnz() as f64;
    let ratio = full / half.max(1.0);
    assert!(
        (1.5..=2.5).contains(&ratio),
        "expected ~2x growth, got {half} -> {full} (ratio {ratio:.2})"
    );
}

/// The paper's premise: the MMT family's churn is real — it migrates a
/// significant fraction of VMs per step under bursty load.
#[test]
fn mmt_churn_is_reproduced() {
    let (hosts, vms, steps) = (40, 52, 300);
    let sim = planetlab_sim(hosts, vms, steps, 48);
    let thr = sim.run(MmtScheduler::new(MmtFlavor::Thr)).report();
    let per_step = thr.total_migrations as f64 / steps as f64;
    assert!(
        per_step > 1.0,
        "THR-MMT should churn multiple migrations per step, got {per_step:.2}"
    );
}

/// Sanity on the §6.1 constants used across the harness.
#[test]
fn paper_constants_are_the_defaults() {
    let cfg = MeghConfig::paper_defaults(10, 10);
    assert_eq!(cfg.gamma, 0.5);
    assert_eq!(cfg.temp0, 3.0);
    assert_eq!(cfg.epsilon, 0.01);
    let dc = DataCenterConfig::paper_planetlab(4, 4);
    assert_eq!(dc.cost.beta_overload, 0.70);
    assert_eq!(dc.cost.alpha_migration, 0.30);
    assert_eq!(dc.cost.usd_per_kwh, 0.18675);
    assert_eq!(dc.cost.vm_hourly_fee_usd, 1.2);
}
