//! Cross-crate integration tests: every scheduler, both workload
//! families, through the public facade API.

use megh::baselines::{
    MadVmConfig, MadVmScheduler, MmtFlavor, MmtScheduler, QLearningConfig, QLearningScheduler,
};
use megh::core::{MeghAgent, MeghConfig};
use megh::sim::{
    DataCenterConfig, InitialPlacement, NoOpScheduler, Scheduler, Simulation, SimulationOutcome,
};
use megh::trace::{GoogleConfig, PlanetLabConfig, WorkloadTrace};

fn planetlab_sim(hosts: usize, vms: usize, steps: usize, seed: u64) -> Simulation {
    let trace = PlanetLabConfig::new(vms, seed).generate_steps(steps);
    let mut config = DataCenterConfig::paper_planetlab(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;
    Simulation::new(config, trace).expect("consistent setup")
}

fn google_sim(hosts: usize, vms: usize, steps: usize, seed: u64) -> Simulation {
    let trace = GoogleConfig::new(vms, seed).generate_steps(steps);
    let mut config = DataCenterConfig::paper_google(hosts, vms);
    config.initial_placement = InitialPlacement::DemandPacked;
    Simulation::new(config, trace).expect("consistent setup")
}

fn check_outcome_invariants(outcome: &SimulationOutcome, steps: usize, hosts: usize) {
    assert_eq!(outcome.records().len(), steps);
    let report = outcome.report();
    // Cost decomposition is exact.
    assert!((report.total_cost_usd - report.energy_cost_usd - report.sla_cost_usd).abs() < 1e-9);
    // Energy is strictly positive whenever any VM exists.
    assert!(report.energy_cost_usd > 0.0);
    // Cumulative migrations is non-decreasing and consistent.
    let mut prev = 0;
    for r in outcome.records() {
        assert!(r.cumulative_migrations >= prev);
        assert_eq!(r.cumulative_migrations - prev, r.migrations);
        prev = r.cumulative_migrations;
        assert!(r.active_hosts <= hosts);
        assert!(r.total_cost_usd >= 0.0);
    }
    // Downtime never exceeds requested time.
    for (d, r) in outcome
        .vm_downtime_seconds()
        .iter()
        .zip(outcome.vm_requested_seconds())
    {
        assert!(*d >= 0.0 && d <= r);
    }
}

#[test]
fn every_scheduler_runs_on_planetlab() {
    let (hosts, vms, steps) = (10, 16, 40);
    let sim = planetlab_sim(hosts, vms, steps, 7);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(NoOpScheduler),
        Box::new(MmtScheduler::new(MmtFlavor::Thr)),
        Box::new(MmtScheduler::new(MmtFlavor::Iqr)),
        Box::new(MmtScheduler::new(MmtFlavor::Mad)),
        Box::new(MmtScheduler::new(MmtFlavor::Lr)),
        Box::new(MmtScheduler::new(MmtFlavor::Lrr)),
        Box::new(MadVmScheduler::new(MadVmConfig::default())),
        Box::new(QLearningScheduler::new(QLearningConfig::default())),
        Box::new(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts))),
    ];
    for mut s in schedulers {
        let outcome = sim.run(&mut *s);
        check_outcome_invariants(&outcome, steps, hosts);
    }
}

#[test]
fn every_scheduler_runs_on_google() {
    let (hosts, vms, steps) = (8, 20, 40);
    let sim = google_sim(hosts, vms, steps, 9);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(NoOpScheduler),
        Box::new(MmtScheduler::new(MmtFlavor::Thr)),
        Box::new(MadVmScheduler::new(MadVmConfig::default())),
        Box::new(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts))),
    ];
    for mut s in schedulers {
        let outcome = sim.run(&mut *s);
        check_outcome_invariants(&outcome, steps, hosts);
    }
}

#[test]
fn runs_are_deterministic_across_all_schedulers() {
    let (hosts, vms, steps) = (6, 10, 30);
    let sim = planetlab_sim(hosts, vms, steps, 11);
    let run_pair = |mk: &dyn Fn() -> Box<dyn Scheduler>| {
        let a = sim.run(&mut *mk());
        let b = sim.run(&mut *mk());
        assert_eq!(
            a.final_placement(),
            b.final_placement(),
            "{}",
            a.scheduler()
        );
        assert_eq!(
            a.report().total_migrations,
            b.report().total_migrations,
            "{}",
            a.scheduler()
        );
        let costs_a: Vec<f64> = a.records().iter().map(|r| r.total_cost_usd).collect();
        let costs_b: Vec<f64> = b.records().iter().map(|r| r.total_cost_usd).collect();
        assert_eq!(costs_a, costs_b, "{}", a.scheduler());
    };
    run_pair(&|| Box::new(MmtScheduler::new(MmtFlavor::Lrr)));
    run_pair(&|| Box::new(MadVmScheduler::new(MadVmConfig::default())));
    run_pair(&|| Box::new(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts))));
}

#[test]
fn vm_count_is_conserved_across_migrations() {
    let (hosts, vms, steps) = (6, 12, 50);
    let sim = planetlab_sim(hosts, vms, steps, 13);
    for outcome in [
        sim.run(MmtScheduler::new(MmtFlavor::Thr)),
        sim.run(MeghAgent::new(MeghConfig::paper_defaults(vms, hosts))),
    ] {
        assert_eq!(outcome.final_placement().len(), vms);
        for &h in outcome.final_placement() {
            assert!(h < hosts);
        }
    }
}

#[test]
fn trace_roundtrip_feeds_simulation() {
    // Save a trace to CSV, reload it, and verify the simulation outcome
    // is identical — the external-data path works end to end.
    let trace = PlanetLabConfig::new(6, 21).generate_steps(20);
    let path = std::env::temp_dir().join(format!("megh-e2e-{}.csv", std::process::id()));
    megh::trace::save_csv(&trace, &path).expect("save");
    let reloaded = megh::trace::load_csv(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let config = DataCenterConfig::paper_planetlab(4, 6);
    let a = Simulation::new(config.clone(), trace)
        .unwrap()
        .run(NoOpScheduler);
    let b = Simulation::new(config, reloaded)
        .unwrap()
        .run(NoOpScheduler);
    assert!((a.report().total_cost_usd - b.report().total_cost_usd).abs() < 1e-3);
}

#[test]
fn explicit_placement_survives_validation_and_runs() {
    let trace = WorkloadTrace::from_rows(300, vec![vec![10.0; 5]; 3]).unwrap();
    let mut config = DataCenterConfig::paper_planetlab(3, 3);
    config.initial_placement = InitialPlacement::Explicit(vec![2, 2, 2]);
    let sim = Simulation::new(config, trace).unwrap();
    assert_eq!(sim.initial_placement(), &[2, 2, 2]);
    let outcome = sim.run(NoOpScheduler);
    assert_eq!(outcome.records()[0].active_hosts, 1);
}
