//! Megh: learn-as-you-go live migration of virtual machines.
//!
//! This facade crate re-exports the full reproduction of *"Learn-as-you-go
//! with Megh: Efficient Live Migration of Virtual Machines"* (Basu, Wang,
//! Hong, Chen, Bressan — ICDCS 2017):
//!
//! * [`sim`] — the discrete-time cloud data-center simulator (CloudSim
//!   substitute): power model, live-migration engine, energy and SLA cost
//!   accounting.
//! * [`trace`] — synthetic PlanetLab-like and Google-Cluster-like workload
//!   generators with trace statistics and CSV I/O.
//! * [`core`] — the Megh reinforcement-learning scheduler itself: sparse
//!   basis projection, LSPI with Sherman–Morrison updates, Boltzmann
//!   exploration.
//! * [`baselines`] — the comparators: the MMT heuristic family
//!   (THR/IQR/MAD/LR/LRR), MadVM, and tabular Q-learning.
//! * [`serve`] — the crash-safe decision daemon behind `megh serve`:
//!   lock-free frozen-snapshot reads, a single batching writer, and
//!   versioned checkpoints.
//! * [`linalg`] — the sparse linear-algebra substrate.
//!
//! # Quickstart
//!
//! ```
//! use megh::core::{MeghAgent, MeghConfig};
//! use megh::sim::{DataCenterConfig, Simulation};
//! use megh::trace::PlanetLabConfig;
//!
//! let trace = PlanetLabConfig::new(20, 42).generate_steps(50);
//! let dc = DataCenterConfig::paper_planetlab(10, 20);
//! let agent = MeghAgent::new(MeghConfig::paper_defaults(20, 10));
//! let outcome = Simulation::new(dc, trace).expect("valid setup").run(agent);
//! assert!(outcome.report().total_cost_usd > 0.0);
//! ```

// No unsafe code anywhere in this crate (also enforced by `cargo run -p lint`).
#![forbid(unsafe_code)]

pub use megh_baselines as baselines;
pub use megh_core as core;
pub use megh_linalg as linalg;
pub use megh_serve as serve;
pub use megh_sim as sim;
pub use megh_trace as trace;

/// The most common imports in one place.
///
/// # Examples
///
/// ```
/// use megh::prelude::*;
///
/// let trace = PlanetLabConfig::new(10, 1).generate_steps(20);
/// let config = DataCenterConfig::paper_planetlab(5, 10);
/// let agent = MeghAgent::new(MeghConfig::paper_defaults(10, 5));
/// let outcome = Simulation::new(config, trace).unwrap().run(agent);
/// assert_eq!(outcome.records().len(), 20);
/// ```
pub mod prelude {
    pub use megh_baselines::{MadVmConfig, MadVmScheduler, MmtFlavor, MmtScheduler};
    pub use megh_core::{MeghAgent, MeghConfig, PeriodicMeghAgent};
    pub use megh_sim::{
        DataCenterConfig, DataCenterView, HostOutage, InitialPlacement, MigrationRequest,
        NoOpScheduler, PmId, Scheduler, SimError, Simulation, SlavMetrics, SummaryReport, VmId,
    };
    pub use megh_trace::{DiurnalConfig, GoogleConfig, PlanetLabConfig, TraceStats, WorkloadTrace};
}
